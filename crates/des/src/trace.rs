//! Versioned append-only binary event traces: record every applied
//! event, replay and diff runs, and bisect divergences.
//!
//! A trace is a header plus a flat sequence of *frames*:
//!
//! ```text
//! header:        "SCRIPTRC" | version u32 | config fingerprint u64 | seed u64
//! event frame:   0x01 | time u64 (µs) | seq u64 | len u32 | payload | checksum u64
//! digest frame:  0x02 | time u64 (µs) | events_processed u64 | digest u64 | checksum u64
//! end frame:     0x03 | time u64 (µs) | events_processed u64 | checksum u64
//! ```
//!
//! All integers are little-endian. Every frame carries an FNV-1a
//! checksum over its own bytes (tag through payload), so bit-flips are
//! caught at the frame that suffered them, not at end-of-run. Event
//! payloads are opaque to this module — the model crate encodes and
//! decodes them (the market uses its checkpoint event codec), which
//! keeps the trace format model-agnostic.
//!
//! [`TraceWriter`] sits on the simulation hot path: frames accumulate
//! in an in-memory buffer and reach the sink only at explicit
//! [`TraceWriter::flush`] calls (sampling boundaries) or when the
//! buffer passes a size threshold — always on a frame boundary, so a
//! crash mid-write leaves at most one partial frame at the tail, which
//! readers report as truncation instead of replaying garbage.
//!
//! [`TraceReader`] is the append-only consumer side: any number of
//! registered consumers hold independent cursors over the same byte
//! log, and [`TraceReader::extend`] grows the log in place so a live
//! consumer can tail a trace still being written. [`TraceTailer`]
//! packages that into a file follower: it polls a path for appended
//! bytes, treats a partial frame at the tail as "wait for the writer's
//! next flush" rather than an error, and reports completion when the
//! end frame lands.
//!
//! The end frame (written by [`TraceWriter::end`]) marks an
//! intentionally finished log. Without it, a tailing consumer cannot
//! distinguish "the writer is between flushes" from "the run is over" —
//! with it, truncation stays fail-closed even for live followers.

use std::fmt;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::time::SimTime;

/// Magic prefix of every trace file ("SCRIPTRC" as bytes).
pub const TRACE_MAGIC: [u8; 8] = *b"SCRIPTRC";
/// Trace format version; bump on any layout change.
pub const TRACE_VERSION: u32 = 2;

/// Frame tag for an applied event.
const TAG_EVENT: u8 = 0x01;
/// Frame tag for a state digest.
const TAG_DIGEST: u8 = 0x02;
/// Frame tag for the end-of-log marker.
const TAG_END: u8 = 0x03;

/// Byte length of the fixed header.
const HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// Buffered bytes that trigger an automatic flush at the next frame
/// boundary (1 MiB).
const AUTO_FLUSH_BYTES: usize = 1 << 20;

/// FNV-1a over 8-byte words — the per-frame checksum. Folding a word
/// per multiply instead of a byte keeps the checksum off the recording
/// hot path (the multiply chain is the frame encoder's only serial
/// dependency); any flipped bit still avalanches through the
/// multiplies. The zero-padded tail is unambiguous because every
/// checksummed region starts with its frame tag and encodes its own
/// length (event frames carry an explicit payload length; digest
/// frames are fixed-size).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        h ^= u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Errors from writing or reading a trace. Reads are fail-closed:
/// truncated, corrupt, or mismatched traces produce a precise error,
/// never a garbage replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The underlying sink or source failed.
    Io(String),
    /// The file does not start with the `SCRIPTRC` magic.
    BadMagic,
    /// The file's format version is not the one this build reads.
    Version {
        /// Version found in the header.
        found: u32,
    },
    /// The byte log ends mid-header or mid-frame (e.g. a crash left a
    /// partial final frame).
    Truncated {
        /// Byte offset the incomplete header/frame starts at.
        offset: usize,
    },
    /// A frame failed its checksum or carries an unknown tag.
    Corrupt {
        /// Byte offset of the offending frame.
        offset: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(msg) => write!(f, "trace I/O: {msg}"),
            TraceError::BadMagic => write!(f, "not a scrip trace (bad magic)"),
            TraceError::Version { found } => write!(
                f,
                "unsupported trace version {found} (this build reads {TRACE_VERSION})"
            ),
            TraceError::Truncated { offset } => {
                write!(f, "truncated trace: incomplete frame at byte {offset}")
            }
            TraceError::Corrupt { offset } => {
                write!(f, "corrupt trace: bad checksum or tag at byte {offset}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// The fixed header identifying what a trace recorded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceHeader {
    /// Fingerprint of the recorded run's configuration — replaying
    /// against a different scenario fails loudly instead of silently
    /// diverging.
    pub fingerprint: u64,
    /// The recorded run's root seed.
    pub seed: u64,
}

/// One decoded trace frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceFrame {
    /// An applied event, keyed by its `(time, seq)` identity.
    Event {
        /// The instant the event fired.
        time: SimTime,
        /// The event's global sequence number (FIFO tie-break key).
        seq: u64,
        /// Model-encoded event payload (opaque to the trace layer).
        payload: Vec<u8>,
    },
    /// A state digest taken at a sampling boundary.
    Digest {
        /// The boundary instant.
        time: SimTime,
        /// Events dispatched when the digest was taken.
        events_processed: u64,
        /// The model's state digest (see `MarketView::state_digest`).
        digest: u64,
    },
    /// The end-of-log marker: the writer finished intentionally.
    End {
        /// The instant the log was closed.
        time: SimTime,
        /// Total events dispatched over the recorded run.
        events_processed: u64,
    },
}

impl TraceFrame {
    /// The frame's instant (event fire time, digest boundary, or close).
    pub fn time(&self) -> SimTime {
        match self {
            TraceFrame::Event { time, .. }
            | TraceFrame::Digest { time, .. }
            | TraceFrame::End { time, .. } => *time,
        }
    }
}

/// Buffered append-only trace encoder over any [`Write`] sink.
///
/// Frames are staged in memory and hit the sink only on
/// [`TraceWriter::flush`] / [`TraceWriter::finish`] or when the staging
/// buffer exceeds a fixed threshold — always on a frame boundary.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    buf: Vec<u8>,
    frames: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace on `sink`, staging the header.
    pub fn new(sink: W, header: TraceHeader) -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&TRACE_MAGIC);
        buf.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        buf.extend_from_slice(&header.fingerprint.to_le_bytes());
        buf.extend_from_slice(&header.seed.to_le_bytes());
        TraceWriter {
            sink,
            buf,
            frames: 0,
        }
    }

    /// Frames staged or written so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Appends an event frame.
    pub fn event(&mut self, time: SimTime, seq: u64, payload: &[u8]) -> Result<(), TraceError> {
        let start = self.buf.len();
        self.buf.push(TAG_EVENT);
        self.buf.extend_from_slice(&time.as_micros().to_le_bytes());
        self.buf.extend_from_slice(&seq.to_le_bytes());
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(payload);
        let check = fnv1a(&self.buf[start..]);
        self.buf.extend_from_slice(&check.to_le_bytes());
        self.frames += 1;
        self.maybe_flush()
    }

    /// Appends a state-digest frame.
    pub fn digest(
        &mut self,
        time: SimTime,
        events_processed: u64,
        digest: u64,
    ) -> Result<(), TraceError> {
        let start = self.buf.len();
        self.buf.push(TAG_DIGEST);
        self.buf.extend_from_slice(&time.as_micros().to_le_bytes());
        self.buf.extend_from_slice(&events_processed.to_le_bytes());
        self.buf.extend_from_slice(&digest.to_le_bytes());
        let check = fnv1a(&self.buf[start..]);
        self.buf.extend_from_slice(&check.to_le_bytes());
        self.frames += 1;
        self.maybe_flush()
    }

    /// Appends the end-of-log marker. The writer stays usable (so the
    /// caller can still `finish`), but a tailing reader treats the log
    /// as complete from this frame on.
    pub fn end(&mut self, time: SimTime, events_processed: u64) -> Result<(), TraceError> {
        let start = self.buf.len();
        self.buf.push(TAG_END);
        self.buf.extend_from_slice(&time.as_micros().to_le_bytes());
        self.buf.extend_from_slice(&events_processed.to_le_bytes());
        let check = fnv1a(&self.buf[start..]);
        self.buf.extend_from_slice(&check.to_le_bytes());
        self.frames += 1;
        self.maybe_flush()
    }

    fn maybe_flush(&mut self) -> Result<(), TraceError> {
        if self.buf.len() >= AUTO_FLUSH_BYTES {
            self.flush()?;
        }
        Ok(())
    }

    /// Drains the staging buffer to the sink (called at sampling
    /// boundaries so a tailing reader only ever sees whole frames).
    pub fn flush(&mut self) -> Result<(), TraceError> {
        if !self.buf.is_empty() {
            self.sink
                .write_all(&self.buf)
                .map_err(|e| TraceError::Io(e.to_string()))?;
            self.buf.clear();
        }
        self.sink.flush().map_err(|e| TraceError::Io(e.to_string()))
    }

    /// Flushes and returns the sink.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.flush()?;
        Ok(self.sink)
    }
}

/// Fail-closed trace decoder with independent per-consumer cursors
/// over one append-only byte log.
#[derive(Clone, Debug)]
pub struct TraceReader {
    bytes: Vec<u8>,
    header: TraceHeader,
    /// Per-consumer `(byte offset, frames delivered)` counters.
    cursors: Vec<(usize, u64)>,
}

impl TraceReader {
    /// Wraps a complete in-memory trace, validating the header.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, TraceError> {
        if bytes.len() < TRACE_MAGIC.len() {
            return Err(TraceError::Truncated { offset: 0 });
        }
        if bytes[..TRACE_MAGIC.len()] != TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        if bytes.len() < HEADER_LEN {
            return Err(TraceError::Truncated { offset: 0 });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != TRACE_VERSION {
            return Err(TraceError::Version { found: version });
        }
        let fingerprint = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let seed = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
        Ok(TraceReader {
            bytes,
            header: TraceHeader { fingerprint, seed },
            cursors: Vec::new(),
        })
    }

    /// Reads and wraps a trace file.
    pub fn from_path(path: &Path) -> Result<Self, TraceError> {
        let bytes =
            std::fs::read(path).map_err(|e| TraceError::Io(format!("{}: {e}", path.display())))?;
        Self::from_bytes(bytes)
    }

    /// The trace header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Total byte length of the log (header included).
    pub fn len_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Registers a new consumer starting at the first frame; the
    /// returned id indexes this consumer's cursor.
    pub fn register_consumer(&mut self) -> usize {
        self.cursors.push((HEADER_LEN, 0));
        self.cursors.len() - 1
    }

    /// Frames delivered to `consumer` so far.
    pub fn frames_delivered(&self, consumer: usize) -> u64 {
        self.cursors[consumer].1
    }

    /// Whether `consumer` has consumed every byte currently in the log.
    pub fn at_end(&self, consumer: usize) -> bool {
        self.cursors[consumer].0 == self.bytes.len()
    }

    /// Appends freshly-flushed bytes (append-only growth): consumers
    /// that had drained the log simply resume at the new frames.
    pub fn extend(&mut self, more: &[u8]) {
        self.bytes.extend_from_slice(more);
    }

    /// Decodes the frame `consumer` would receive next, without
    /// advancing its cursor.
    pub fn peek_frame(&self, consumer: usize) -> Result<Option<TraceFrame>, TraceError> {
        let (offset, _) = self.cursors[consumer];
        Ok(decode_frame(&self.bytes, offset)?.map(|(frame, _)| frame))
    }

    /// Decodes the next frame for `consumer`, advancing its cursor.
    /// Returns `Ok(None)` exactly at end-of-log; a partial trailing
    /// frame is [`TraceError::Truncated`], a checksum mismatch is
    /// [`TraceError::Corrupt`].
    pub fn next_frame(&mut self, consumer: usize) -> Result<Option<TraceFrame>, TraceError> {
        let (offset, _) = self.cursors[consumer];
        match decode_frame(&self.bytes, offset)? {
            None => Ok(None),
            Some((frame, next)) => {
                let cursor = &mut self.cursors[consumer];
                cursor.0 = next;
                cursor.1 += 1;
                Ok(Some(frame))
            }
        }
    }
}

/// Decodes one frame at `offset`; `Ok(None)` exactly at end-of-log.
fn decode_frame(bytes: &[u8], offset: usize) -> Result<Option<(TraceFrame, usize)>, TraceError> {
    if offset == bytes.len() {
        return Ok(None);
    }
    let take = |at: usize, n: usize| -> Result<&[u8], TraceError> {
        bytes
            .get(at..at + n)
            .ok_or(TraceError::Truncated { offset })
    };
    let u64_at = |at: usize| -> Result<u64, TraceError> {
        Ok(u64::from_le_bytes(
            take(at, 8)?.try_into().expect("8 bytes"),
        ))
    };
    let tag = take(offset, 1)?[0];
    match tag {
        TAG_EVENT => {
            let time = u64_at(offset + 1)?;
            let seq = u64_at(offset + 9)?;
            let len =
                u32::from_le_bytes(take(offset + 17, 4)?.try_into().expect("4 bytes")) as usize;
            let payload = take(offset + 21, len)?;
            let body_end = offset + 21 + len;
            let check = u64_at(body_end)?;
            if check != fnv1a(&bytes[offset..body_end]) {
                return Err(TraceError::Corrupt { offset });
            }
            Ok(Some((
                TraceFrame::Event {
                    time: SimTime::from_micros(time),
                    seq,
                    payload: payload.to_vec(),
                },
                body_end + 8,
            )))
        }
        TAG_DIGEST => {
            let time = u64_at(offset + 1)?;
            let events_processed = u64_at(offset + 9)?;
            let digest = u64_at(offset + 17)?;
            let check = u64_at(offset + 25)?;
            if check != fnv1a(&bytes[offset..offset + 25]) {
                return Err(TraceError::Corrupt { offset });
            }
            Ok(Some((
                TraceFrame::Digest {
                    time: SimTime::from_micros(time),
                    events_processed,
                    digest,
                },
                offset + 33,
            )))
        }
        TAG_END => {
            let time = u64_at(offset + 1)?;
            let events_processed = u64_at(offset + 9)?;
            let check = u64_at(offset + 17)?;
            if check != fnv1a(&bytes[offset..offset + 17]) {
                return Err(TraceError::Corrupt { offset });
            }
            Ok(Some((
                TraceFrame::End {
                    time: SimTime::from_micros(time),
                    events_processed,
                },
                offset + 25,
            )))
        }
        _ => Err(TraceError::Corrupt { offset }),
    }
}

/// Follows a trace file still being written: each [`TraceTailer::poll`]
/// picks up bytes appended since the last poll and decodes every whole
/// frame they complete. A partial frame at the tail (the writer is
/// between flushes, or crashed mid-write) is not an error from the
/// tailer's point of view — the frame is simply not delivered yet; the
/// caller decides how long to keep waiting. Checksum failures and
/// header mismatches stay fail-closed.
#[derive(Debug)]
pub struct TraceTailer {
    path: PathBuf,
    /// Bytes consumed from the file so far.
    offset: u64,
    /// Header bytes accumulated before the reader could be built.
    pending: Vec<u8>,
    reader: Option<TraceReader>,
    consumer: usize,
    finished: bool,
}

impl TraceTailer {
    /// Starts tailing `path`. The file may not exist yet — polling
    /// before the writer creates it simply yields no frames.
    pub fn new(path: &Path) -> Self {
        TraceTailer {
            path: path.to_path_buf(),
            offset: 0,
            pending: Vec::new(),
            reader: None,
            consumer: 0,
            finished: false,
        }
    }

    /// Whether the end-of-log frame has been delivered: the writer
    /// finished intentionally and no further frames will arrive.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// The trace header, once enough bytes have landed to decode it.
    pub fn header(&self) -> Option<&TraceHeader> {
        self.reader.as_ref().map(|r| r.header())
    }

    /// Reads any bytes appended since the last poll and returns every
    /// whole frame they complete (possibly none). `Ok(vec![])` means
    /// "nothing new yet", including before the file exists.
    pub fn poll(&mut self) -> Result<Vec<TraceFrame>, TraceError> {
        let fresh = self.read_growth()?;
        if !fresh.is_empty() {
            match &mut self.reader {
                Some(reader) => reader.extend(&fresh),
                None => {
                    self.pending.extend_from_slice(&fresh);
                    if self.pending.len() >= HEADER_LEN {
                        let mut reader =
                            TraceReader::from_bytes(std::mem::take(&mut self.pending))?;
                        self.consumer = reader.register_consumer();
                        self.reader = Some(reader);
                    }
                }
            }
        }
        let mut frames = Vec::new();
        if let Some(reader) = &mut self.reader {
            loop {
                match reader.next_frame(self.consumer) {
                    Ok(Some(frame)) => {
                        if matches!(frame, TraceFrame::End { .. }) {
                            self.finished = true;
                        }
                        frames.push(frame);
                    }
                    Ok(None) => break,
                    // Partial frame at the tail: the cursor did not
                    // advance, so the next poll retries it once the
                    // writer's flush completes it.
                    Err(TraceError::Truncated { .. }) => break,
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(frames)
    }

    /// Reads file bytes past `self.offset`, advancing the offset.
    fn read_growth(&mut self) -> Result<Vec<u8>, TraceError> {
        let mut file = match std::fs::File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(TraceError::Io(format!("{}: {e}", self.path.display()))),
        };
        file.seek(SeekFrom::Start(self.offset))
            .map_err(|e| TraceError::Io(e.to_string()))?;
        let mut fresh = Vec::new();
        file.read_to_end(&mut fresh)
            .map_err(|e| TraceError::Io(e.to_string()))?;
        self.offset += fresh.len() as u64;
        Ok(fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Vec<u8> {
        let mut w = TraceWriter::new(
            Vec::new(),
            TraceHeader {
                fingerprint: 0xF1F2,
                seed: 42,
            },
        );
        w.event(SimTime::from_secs(1), 0, b"alpha").expect("event");
        w.event(SimTime::from_secs(2), 1, b"").expect("event");
        w.digest(SimTime::from_secs(2), 2, 0xD1D2D3)
            .expect("digest");
        w.event(SimTime::from_secs(3), 2, b"gamma").expect("event");
        w.finish().expect("finish")
    }

    #[test]
    fn frames_round_trip_in_order() {
        let mut r = TraceReader::from_bytes(sample_trace()).expect("valid trace");
        assert_eq!(
            r.header(),
            &TraceHeader {
                fingerprint: 0xF1F2,
                seed: 42
            }
        );
        let c = r.register_consumer();
        let mut frames = Vec::new();
        while let Some(f) = r.next_frame(c).expect("clean frames") {
            frames.push(f);
        }
        assert_eq!(frames.len(), 4);
        assert_eq!(
            frames[0],
            TraceFrame::Event {
                time: SimTime::from_secs(1),
                seq: 0,
                payload: b"alpha".to_vec()
            }
        );
        assert_eq!(
            frames[2],
            TraceFrame::Digest {
                time: SimTime::from_secs(2),
                events_processed: 2,
                digest: 0xD1D2D3
            }
        );
        assert_eq!(r.frames_delivered(c), 4);
        assert!(r.at_end(c));
    }

    #[test]
    fn consumers_hold_independent_cursors() {
        let mut r = TraceReader::from_bytes(sample_trace()).expect("valid trace");
        let a = r.register_consumer();
        let b = r.register_consumer();
        let first_a = r.next_frame(a).expect("frame").expect("some");
        r.next_frame(a).expect("frame").expect("some");
        let first_b = r.next_frame(b).expect("frame").expect("some");
        assert_eq!(first_a, first_b, "consumers see the same stream");
        assert_eq!(r.frames_delivered(a), 2);
        assert_eq!(r.frames_delivered(b), 1);
    }

    #[test]
    fn extend_grows_the_log_for_tailing_consumers() {
        let full = sample_trace();
        // Split on the frame boundary after the first flush-worth.
        let mut r = TraceReader::from_bytes(full[..HEADER_LEN].to_vec()).expect("header-only");
        let c = r.register_consumer();
        assert_eq!(r.next_frame(c).expect("eof is clean"), None);
        r.extend(&full[HEADER_LEN..]);
        let mut seen = 0;
        while r.next_frame(c).expect("clean frames").is_some() {
            seen += 1;
        }
        assert_eq!(seen, 4, "all appended frames delivered");
    }

    #[test]
    fn truncation_is_fail_closed() {
        let full = sample_trace();
        // Header shorter than fixed length.
        assert_eq!(
            TraceReader::from_bytes(full[..10].to_vec()).unwrap_err(),
            TraceError::Truncated { offset: 0 }
        );
        // Partial final frame (mid-write crash).
        let mut r = TraceReader::from_bytes(full[..full.len() - 3].to_vec()).expect("header ok");
        let c = r.register_consumer();
        let last = loop {
            match r.next_frame(c) {
                Ok(Some(_)) => continue,
                other => break other,
            }
        };
        assert!(
            matches!(last, Err(TraceError::Truncated { .. })),
            "partial frame must error, got {last:?}"
        );
    }

    #[test]
    fn corruption_and_header_mismatches_are_fail_closed() {
        let full = sample_trace();
        // Bit-flip inside the first frame's payload.
        let mut flipped = full.clone();
        flipped[HEADER_LEN + 25] ^= 0x40;
        let mut r = TraceReader::from_bytes(flipped).expect("header ok");
        let c = r.register_consumer();
        assert!(matches!(r.next_frame(c), Err(TraceError::Corrupt { .. })));
        // Wrong magic.
        let mut bad_magic = full.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            TraceReader::from_bytes(bad_magic).unwrap_err(),
            TraceError::BadMagic
        );
        // Wrong version.
        let mut bad_version = full;
        bad_version[8] = 99;
        assert_eq!(
            TraceReader::from_bytes(bad_version).unwrap_err(),
            TraceError::Version { found: 99 }
        );
    }

    #[test]
    fn end_frame_round_trips_and_marks_completion() {
        let mut w = TraceWriter::new(
            Vec::new(),
            TraceHeader {
                fingerprint: 9,
                seed: 3,
            },
        );
        w.event(SimTime::from_secs(1), 0, b"a").expect("event");
        w.end(SimTime::from_secs(5), 17).expect("end");
        let bytes = w.finish().expect("finish");
        let mut r = TraceReader::from_bytes(bytes).expect("valid trace");
        let c = r.register_consumer();
        r.next_frame(c).expect("frame").expect("event");
        assert_eq!(
            r.next_frame(c).expect("frame"),
            Some(TraceFrame::End {
                time: SimTime::from_secs(5),
                events_processed: 17
            })
        );
        assert_eq!(r.next_frame(c).expect("eof"), None);
    }

    #[test]
    fn tailer_delivers_frames_as_the_file_grows() {
        let path = std::env::temp_dir().join(format!(
            "scrip-tailer-{}-{:?}.trc",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut tailer = TraceTailer::new(&path);
        // Nothing exists yet: clean empty poll.
        assert_eq!(tailer.poll().expect("pre-file poll"), Vec::new());

        let full = {
            let mut w = TraceWriter::new(
                Vec::new(),
                TraceHeader {
                    fingerprint: 7,
                    seed: 11,
                },
            );
            w.event(SimTime::from_secs(1), 0, b"alpha").expect("event");
            w.digest(SimTime::from_secs(1), 1, 0xAB).expect("digest");
            w.end(SimTime::from_secs(1), 1).expect("end");
            w.finish().expect("finish")
        };

        // Write the header plus a *partial* first frame: the tailer
        // must wait, not error.
        std::fs::write(&path, &full[..HEADER_LEN + 5]).expect("write");
        assert!(tailer
            .poll()
            .expect("partial tail is not an error")
            .is_empty());
        assert!(!tailer.finished());
        assert_eq!(tailer.header().map(|h| h.seed), Some(11));

        // Complete the file: all three frames land, end observed.
        std::fs::write(&path, &full).expect("rewrite grows the file");
        let frames = tailer.poll().expect("poll");
        assert_eq!(frames.len(), 3);
        assert!(matches!(frames[2], TraceFrame::End { .. }));
        assert!(tailer.finished());
        assert_eq!(tailer.poll().expect("drained"), Vec::new());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tailer_propagates_corruption() {
        let path = std::env::temp_dir().join(format!(
            "scrip-tailer-corrupt-{}-{:?}.trc",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut full = sample_trace();
        full[HEADER_LEN + 25] ^= 0x40;
        std::fs::write(&path, &full).expect("write");
        let mut tailer = TraceTailer::new(&path);
        assert!(matches!(tailer.poll(), Err(TraceError::Corrupt { .. })));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn writer_flushes_only_on_request_or_threshold() {
        let mut w = TraceWriter::new(
            Vec::new(),
            TraceHeader {
                fingerprint: 1,
                seed: 2,
            },
        );
        w.event(SimTime::ZERO, 0, b"x").expect("event");
        assert!(w.sink.is_empty(), "nothing reaches the sink before flush");
        w.flush().expect("flush");
        assert!(!w.sink.is_empty());
        let staged = w.sink.len();
        w.digest(SimTime::ZERO, 1, 7).expect("digest");
        assert_eq!(w.sink.len(), staged, "frame staged, not written");
        let bytes = w.finish().expect("finish");
        assert!(bytes.len() > staged);
        TraceReader::from_bytes(bytes).expect("finished trace parses");
    }
}

//! Online statistics collectors for simulation measurements.
//!
//! The paper's evaluation tracks quantities over simulated time: Gini index
//! trajectories (Figs. 7–11), per-peer credit spending rates (Fig. 1), and
//! sorted wealth snapshots (Figs. 5–6). These collectors gather such data
//! with O(1) memory per update (except [`TimeSeries`], which stores its
//! samples).

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Welford's online algorithm for mean and variance.
///
/// ```
/// use scrip_des::stats::Welford;
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert_eq!(w.population_variance(), 4.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by n; 0 if empty).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance (divides by n-1; 0 if fewer than two
    /// observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }
}

/// Time-weighted average of a piecewise-constant signal.
///
/// Feed it every change of the signal; the mean weights each value by how
/// long it was held. This is the right way to average queue lengths and
/// wallet balances over simulated time.
///
/// ```
/// use scrip_des::stats::TimeWeightedMean;
/// use scrip_des::SimTime;
///
/// let mut tw = TimeWeightedMean::new(SimTime::ZERO, 0.0);
/// tw.update(SimTime::from_secs(10), 100.0); // value was 0 for 10 s
/// tw.update(SimTime::from_secs(20), 0.0);   // value was 100 for 10 s
/// assert_eq!(tw.mean(SimTime::from_secs(20)), 50.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimeWeightedMean {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64,
    start: SimTime,
}

impl TimeWeightedMean {
    /// Starts tracking a signal whose value is `initial` at `start`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeightedMean {
            last_time: start,
            last_value: initial,
            weighted_sum: 0.0,
            start,
        }
    }

    /// Records that the signal changed to `value` at instant `now`.
    pub fn update(&mut self, now: SimTime, value: f64) {
        let held = now.saturating_duration_since(self.last_time);
        self.weighted_sum += self.last_value * held.as_secs_f64();
        self.last_time = now;
        self.last_value = value;
    }

    /// The time-weighted mean over `[start, now]`.
    ///
    /// Returns the last value if no time has elapsed.
    pub fn mean(&self, now: SimTime) -> f64 {
        let tail = now.saturating_duration_since(self.last_time).as_secs_f64();
        let total = now.saturating_duration_since(self.start).as_secs_f64();
        if total <= 0.0 {
            return self.last_value;
        }
        (self.weighted_sum + self.last_value * tail) / total
    }

    /// The current (most recent) value of the signal.
    pub fn current(&self) -> f64 {
        self.last_value
    }
}

/// A monotonically growing event counter with rate helpers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter {
    count: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.count += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// Current count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Count divided by elapsed seconds (0 when no time has passed).
    pub fn rate(&self, elapsed: SimDuration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.count as f64 / secs
        }
    }
}

/// A fixed-bin histogram over `[lo, hi)` with an overflow and underflow
/// bin.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi` or either bound is not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid histogram range [{lo}, {hi})"
        );
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records an observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of observations (including out-of-range ones).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Bin counts (excluding under/overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The center value of bin `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * width
    }
}

/// A recorded time series of `(time, value)` samples.
///
/// Used for Gini-over-time trajectories (paper Figs. 7–11).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeries {
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample. Samples should be pushed in time order.
    pub fn record(&mut self, t: SimTime, value: f64) {
        self.samples.push((t, value));
    }

    /// The recorded samples in insertion order.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Heap bytes reserved by the sample buffer (capacity, the
    /// allocator's view). Grows with recorded samples — horizon /
    /// sample-interval — not with the population, so memory audits
    /// report it as a fixed cost.
    pub fn heap_bytes(&self) -> usize {
        self.samples.capacity() * std::mem::size_of::<(SimTime, f64)>()
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.samples.last().copied()
    }

    /// Mean of the last `k` values (or all if fewer); [`None`] when empty.
    pub fn tail_mean(&self, k: usize) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let start = self.samples.len().saturating_sub(k);
        let tail = &self.samples[start..];
        Some(tail.iter().map(|&(_, v)| v).sum::<f64>() / tail.len() as f64)
    }

    /// Whether the series has settled: the last `window` values all lie
    /// within ±`tolerance` of their mean. Returns `false` when fewer than
    /// `window` samples exist.
    pub fn has_converged(&self, window: usize, tolerance: f64) -> bool {
        if self.samples.len() < window || window == 0 {
            return false;
        }
        let tail = &self.samples[self.samples.len() - window..];
        let mean = tail.iter().map(|&(_, v)| v).sum::<f64>() / window as f64;
        tail.iter().all(|&(_, v)| (v - mean).abs() <= tolerance)
    }

    /// Writes the series as `time_s,value` CSV rows.
    pub fn to_csv(&self, header: &str) -> String {
        let mut out = String::new();
        out.push_str(header);
        out.push('\n');
        for &(t, v) in &self.samples {
            out.push_str(&format!("{:.3},{:.6}\n", t.as_secs_f64(), v));
        }
        out
    }
}

impl fmt::Display for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TimeSeries({} samples", self.samples.len())?;
        if let Some((t, v)) = self.last() {
            write!(f, ", last = {v:.4} @ {t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_empty() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.population_variance(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
    }

    #[test]
    fn welford_single_value() {
        let mut w = Welford::new();
        w.push(3.5);
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.population_variance(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
    }

    #[test]
    fn welford_matches_naive() {
        let data = [1.0, 2.0, 3.0, 4.0, 10.0, -5.0];
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / data.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.population_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_mean_piecewise() {
        let mut tw = TimeWeightedMean::new(SimTime::ZERO, 1.0);
        tw.update(SimTime::from_secs(5), 3.0); // 1.0 held 5 s
        tw.update(SimTime::from_secs(10), 0.0); // 3.0 held 5 s

        // Mean over [0, 20]: (1*5 + 3*5 + 0*10)/20 = 1.0.
        assert!((tw.mean(SimTime::from_secs(20)) - 1.0).abs() < 1e-12);
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn time_weighted_mean_no_elapsed_time() {
        let tw = TimeWeightedMean::new(SimTime::from_secs(5), 7.0);
        assert_eq!(tw.mean(SimTime::from_secs(5)), 7.0);
    }

    #[test]
    fn counter_rate() {
        let mut c = Counter::new();
        c.add(10);
        c.incr();
        assert_eq!(c.count(), 11);
        assert!((c.rate(SimDuration::from_secs(11)) - 1.0).abs() < 1e-12);
        assert_eq!(c.rate(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn histogram_bins_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-1.0);
        h.record(0.0);
        h.record(5.5);
        h.record(9.999);
        h.record(10.0);
        h.record(42.0);
        assert_eq!(h.count(), 6);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.bins()[9], 1);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn time_series_tail_and_convergence() {
        let mut ts = TimeSeries::new();
        for i in 0..10 {
            ts.record(SimTime::from_secs(i), 0.5 + (i as f64) * 1e-4);
        }
        assert_eq!(ts.len(), 10);
        assert!(ts.has_converged(5, 0.01));
        assert!(!ts.has_converged(5, 1e-6));
        assert!(!ts.has_converged(20, 1.0), "needs at least window samples");
        let tail = ts.tail_mean(4).expect("non-empty");
        assert!((tail - 0.50075).abs() < 1e-9);
    }

    #[test]
    fn time_series_csv() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_secs(1), 0.25);
        let csv = ts.to_csv("t,gini");
        assert!(csv.starts_with("t,gini\n"));
        assert!(csv.contains("1.000,0.250000"));
    }

    #[test]
    fn time_series_display_nonempty() {
        let mut ts = TimeSeries::new();
        assert_eq!(ts.to_string(), "TimeSeries(0 samples)");
        ts.record(SimTime::from_secs(2), 0.5);
        assert!(ts.to_string().contains("last = 0.5000"));
    }
}

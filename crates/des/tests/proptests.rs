//! Property-based tests for the simulation kernel and distributions.

use proptest::prelude::*;
use scrip_des::dist::{AliasTable, Exp, Geometric, Poisson};
use scrip_des::{
    CrossShardLog, EventQueue, FenwickSampler, Model, QueueProfile, Scheduler, ShardCtx,
    ShardModel, ShardedSimulation, SimDuration, SimRng, SimTime, Simulation,
};

/// The O(deg) cumulative-weight walk `FenwickSampler::pick` replaces,
/// verbatim from the pre-Fenwick `CreditMarket::handle_spend`.
fn linear_walk(weights: &[f64], mut target: f64) -> usize {
    let mut pick = weights.len() - 1;
    for (k, &w) in weights.iter().enumerate() {
        if target < w {
            pick = k;
            break;
        }
        target -= w;
    }
    pick
}

fn built_sampler(weights: &[f64]) -> FenwickSampler {
    let mut s = FenwickSampler::with_capacity(weights.len());
    for &w in weights {
        s.push(w);
    }
    s.build();
    s
}

struct Recorder {
    seen: Vec<SimTime>,
}

impl Model for Recorder {
    type Event = ();
    fn handle(&mut self, now: SimTime, _ev: (), _s: &mut Scheduler<()>) {
        self.seen.push(now);
    }
}

/// Records the exact delivery order of keyed events and spawns a
/// bounded cascade of follow-ups, so both the staged streams and the
/// intra-window live heap get exercised. The serial [`Model`] and the
/// [`ShardModel`] impls share one body: any divergence in delivery
/// order shows up as differing `seen` logs.
struct KeyedRecorder {
    shards: usize,
    seen: Vec<(SimTime, u64)>,
}

impl KeyedRecorder {
    fn new(shards: usize) -> Self {
        KeyedRecorder {
            shards,
            seen: Vec::new(),
        }
    }

    fn observe(&mut self, now: SimTime, key: u64, scheduler: &mut Scheduler<u64>) {
        self.seen.push((now, key));
        // One generation of follow-ups: some land inside the current
        // window (live heap), some well past it (staged lanes).
        if key < 1_000 {
            scheduler.schedule_at(now + SimDuration::from_micros(key % 709 + 1), key + 1_000);
            scheduler.schedule_at(now + SimDuration::from_secs(key % 3 + 1), key + 2_000);
        }
    }
}

impl Model for KeyedRecorder {
    type Event = u64;
    fn handle(&mut self, now: SimTime, key: u64, scheduler: &mut Scheduler<u64>) {
        self.observe(now, key, scheduler);
    }
}

impl ShardModel for KeyedRecorder {
    type Event = u64;
    fn shard_count(&self) -> usize {
        self.shards
    }
    fn route(&self, key: &u64) -> usize {
        *key as usize % self.shards
    }
    fn handle(&mut self, now: SimTime, key: u64, _ctx: ShardCtx, scheduler: &mut Scheduler<u64>) {
        self.observe(now, key, scheduler);
    }
}

proptest! {
    /// Events are always delivered in non-decreasing time order, no
    /// matter the scheduling order.
    #[test]
    fn events_delivered_in_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut sim = Simulation::new(Recorder { seen: Vec::new() });
        for &t in &times {
            sim.schedule(SimTime::from_micros(t), ());
        }
        sim.run();
        let seen = &sim.model().seen;
        prop_assert_eq!(seen.len(), times.len());
        for w in seen.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// run_until never passes the horizon and leaves later events queued.
    #[test]
    fn run_until_respects_horizon(times in prop::collection::vec(0u64..1_000, 1..100), horizon in 0u64..1_000) {
        let mut sim = Simulation::new(Recorder { seen: Vec::new() });
        for &t in &times {
            sim.schedule(SimTime::from_secs(t), ());
        }
        let stats = sim.run_until(SimTime::from_secs(horizon));
        let expected = times.iter().filter(|&&t| t <= horizon).count() as u64;
        prop_assert_eq!(stats.events_processed, expected);
        prop_assert_eq!(sim.now(), SimTime::from_secs(horizon));
    }

    /// Time arithmetic is consistent: (t + d) − t == d.
    #[test]
    fn time_arithmetic_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_micros(t);
        let d = SimDuration::from_micros(d);
        prop_assert_eq!((t + d) - t, d);
    }

    /// Exponential samples are non-negative and mean-consistent.
    #[test]
    fn exponential_mean(rate in 0.1f64..20.0, seed in 0u64..1_000) {
        let dist = Exp::new(rate).expect("valid");
        let mut rng = SimRng::seed_from_u64(seed);
        let n = 4_000;
        let mut total = 0.0;
        for _ in 0..n {
            let x = dist.sample(&mut rng);
            prop_assert!(x >= 0.0);
            total += x;
        }
        let mean = total / n as f64;
        let expected = 1.0 / rate;
        prop_assert!((mean - expected).abs() < 6.0 * expected / (n as f64).sqrt() + 0.02,
            "mean {mean} vs expected {expected}");
    }

    /// Poisson mean tracks its parameter across both sampling regimes.
    #[test]
    fn poisson_mean(lambda in 0.2f64..80.0, seed in 0u64..500) {
        let dist = Poisson::new(lambda).expect("valid");
        let mut rng = SimRng::seed_from_u64(seed);
        let n = 3_000;
        let total: u64 = (0..n).map(|_| dist.sample(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        let tolerance = 6.0 * (lambda / n as f64).sqrt() + 0.05;
        prop_assert!((mean - lambda).abs() < tolerance, "mean {mean} vs lambda {lambda}");
    }

    /// Geometric mean matches (1−p)/p.
    #[test]
    fn geometric_mean(p in 0.05f64..1.0, seed in 0u64..500) {
        let dist = Geometric::new(p).expect("valid");
        let mut rng = SimRng::seed_from_u64(seed);
        let n = 4_000;
        let total: u64 = (0..n).map(|_| dist.sample(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        let expected = (1.0 - p) / p;
        let sd = ((1.0 - p).max(1e-9)).sqrt() / p;
        prop_assert!((mean - expected).abs() < 6.0 * sd / (n as f64).sqrt() + 0.05,
            "mean {mean} vs expected {expected}");
    }

    /// Alias tables only ever emit valid indices, with positive-weight
    /// support.
    #[test]
    fn alias_table_support(weights in prop::collection::vec(0.0f64..10.0, 1..50), seed in 0u64..100) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = AliasTable::new(&weights).expect("valid");
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..500 {
            let idx = table.sample(&mut rng);
            prop_assert!(idx < weights.len());
        }
    }

    /// The sharded kernel delivers exactly the serial event stream for
    /// every shard count, worker count, and window width — arbitrary
    /// seed events plus cascading follow-ups included.
    #[test]
    fn sharded_delivery_matches_serial(
        times in prop::collection::vec((0u64..4_000_000, 0u64..1_000), 1..80),
        shards in 1usize..6,
        workers in 1usize..4,
        window_micros in 1u64..3_000_000,
    ) {
        let mut serial = Simulation::new(KeyedRecorder::new(shards));
        for &(t, key) in &times {
            serial.schedule(SimTime::from_micros(t), key);
        }
        let horizon = SimTime::from_secs(10);
        serial.run_until(horizon);

        let mut sharded = ShardedSimulation::new(
            KeyedRecorder::new(shards),
            SimDuration::from_micros(window_micros),
        )
        .with_workers(workers);
        for &(t, key) in &times {
            sharded.schedule(SimTime::from_micros(t), key);
        }
        sharded.run_until(horizon);

        prop_assert_eq!(&sharded.model().seen, &serial.model().seen);
        prop_assert_eq!(sharded.now(), serial.now());
    }

    /// Settling the cross-shard log applies effects in ascending
    /// `(tick, source shard, seq)` order no matter the push order —
    /// i.e. the merge is invariant under worker completion-order
    /// permutations.
    #[test]
    fn cross_shard_settle_order_is_push_order_invariant(
        raw in prop::collection::vec((0u64..6, 0u32..5, 0u64..500), 1..120),
        shuffle_seed in 0u64..1_000,
        through in 0u64..6,
    ) {
        // Unique (tick, shard, seq) keys, as the log contract requires.
        let mut entries = raw;
        entries.sort_unstable();
        entries.dedup();
        // A seeded Fisher–Yates permutation stands in for arbitrary
        // worker completion order.
        let mut rng = SimRng::seed_from_u64(shuffle_seed);
        for i in (1..entries.len()).rev() {
            entries.swap(i, rng.index(i + 1));
        }

        let mut log = CrossShardLog::new();
        for &(tick, shard, seq) in &entries {
            log.push(tick, shard, seq, (tick, shard, seq));
        }
        let mut applied = Vec::new();
        log.settle_through(through, |effect| applied.push(effect.payload));

        let mut expected: Vec<(u64, u32, u64)> = entries
            .iter()
            .copied()
            .filter(|&(tick, _, _)| tick <= through)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(applied, expected);
        prop_assert_eq!(
            log.len(),
            entries.iter().filter(|&&(tick, _, _)| tick > through).count()
        );
    }

    /// `FenwickSampler::pick` selects the same index as the naive linear
    /// cumulative walk for arbitrary weight vectors (zero-weight entries
    /// and single-element vectors included) across the whole target
    /// range, including targets at and past the total.
    #[test]
    fn fenwick_pick_matches_linear_walk(
        raw in prop::collection::vec((0u8..4, 0.001f64..10.0), 1..60),
        frac in 0.0f64..1.3,
    ) {
        // Flag 0 plants an exact zero weight, which the walk skips and
        // the sampler must too.
        let weights: Vec<f64> = raw
            .iter()
            .map(|&(flag, w)| if flag == 0 { 0.0 } else { w })
            .collect();
        let s = built_sampler(&weights);
        let mut sequential = 0.0f64;
        for &w in &weights {
            sequential += w;
        }
        prop_assert_eq!(s.total().to_bits(), sequential.to_bits());
        let target = frac * s.total();
        prop_assert_eq!(s.pick(target), linear_walk(&weights, target));
    }

    /// After a random sequence of incremental `update` calls the sampler
    /// is indistinguishable from one rebuilt from scratch: same total,
    /// same pick for every target. Integer-valued weights keep all
    /// arithmetic exact, so this equality is bit-for-bit.
    #[test]
    fn fenwick_update_matches_rebuild(
        initial in prop::collection::vec(0u32..1_000, 1..50),
        updates in prop::collection::vec((0usize..64, 0u32..1_000), 0..40),
        frac in 0.0f64..1.2,
    ) {
        let mut weights: Vec<f64> = initial.iter().map(|&w| w as f64).collect();
        let mut s = built_sampler(&weights);
        for &(i, w) in &updates {
            let i = i % weights.len();
            weights[i] = w as f64;
            s.update(i, w as f64);
        }
        let fresh = built_sampler(&weights);
        prop_assert_eq!(s.total().to_bits(), fresh.total().to_bits());
        let target = frac * fresh.total();
        prop_assert_eq!(s.pick(target), fresh.pick(target));
        // Exact prefix boundaries are the adversarial targets: the walk
        // moves past a boundary, and so must the updated tree.
        let mut boundary = 0.0f64;
        for &w in &weights {
            boundary += w;
            prop_assert_eq!(s.pick(boundary), linear_walk(&weights, boundary));
            prop_assert_eq!(s.pick(boundary), fresh.pick(boundary));
        }
    }

    /// A wheel-backed `EventQueue` pops the exact `(time, seq)` sequence
    /// the binary-heap backend pops, under random interleavings of
    /// schedule/pop/pop_due with same-time ties and far-future overflow
    /// events, for arbitrary wheel sizing hints.
    #[test]
    fn wheel_pops_exact_heap_sequence(
        ops in prop::collection::vec((0u8..5, 0u64..40, 0u64..1_000), 1..250),
        expected_events in 1usize..600,
        delay_micros in 1u64..5_000_000,
    ) {
        let profile = QueueProfile::Wheel {
            expected_events,
            typical_delay: SimDuration::from_micros(delay_micros),
        };
        let mut heap: EventQueue<u64> = EventQueue::new();
        let mut wheel: EventQueue<u64> = EventQueue::with_profile(profile);
        let mut ev = 0u64;
        for &(op, coarse, fine) in &ops {
            match op {
                // Push within a narrow window: coarse in seconds forces
                // bucket collisions, fine-only times force (time, seq)
                // ties.
                0 | 1 => {
                    let t = SimTime::from_micros(coarse * 1_000_000 + (op as u64) * fine);
                    heap.push(t, ev);
                    wheel.push(t, ev);
                    ev += 1;
                }
                // Far-future push: lands in the wheel's overflow heap.
                2 => {
                    let t = SimTime::from_secs(3_600 + coarse);
                    heap.push(t, ev);
                    wheel.push(t, ev);
                    ev += 1;
                }
                3 => {
                    let (a, b) = (heap.pop(), wheel.pop());
                    prop_assert_eq!(a.as_ref().map(|s| (s.time, s.seq, s.event)),
                                    b.as_ref().map(|s| (s.time, s.seq, s.event)));
                }
                _ => {
                    let limit = SimTime::from_micros(coarse * 1_000_000 + fine);
                    let (a, b) = (heap.pop_due(limit), wheel.pop_due(limit));
                    prop_assert_eq!(a.as_ref().map(|s| (s.time, s.seq, s.event)),
                                    b.as_ref().map(|s| (s.time, s.seq, s.event)));
                }
            }
            prop_assert_eq!(heap.len(), wheel.len());
            prop_assert_eq!(heap.peek_time(), wheel.peek_time());
        }
        loop {
            let (a, b) = (heap.pop(), wheel.pop());
            prop_assert_eq!(a.as_ref().map(|s| (s.time, s.seq, s.event)),
                            b.as_ref().map(|s| (s.time, s.seq, s.event)));
            if a.is_none() {
                break;
            }
        }
    }
}

//! Property-based tests for the simulation kernel and distributions.

use proptest::prelude::*;
use scrip_des::dist::{AliasTable, Exp, Geometric, Poisson};
use scrip_des::{Model, Scheduler, SimDuration, SimRng, SimTime, Simulation};

struct Recorder {
    seen: Vec<SimTime>,
}

impl Model for Recorder {
    type Event = ();
    fn handle(&mut self, now: SimTime, _ev: (), _s: &mut Scheduler<()>) {
        self.seen.push(now);
    }
}

proptest! {
    /// Events are always delivered in non-decreasing time order, no
    /// matter the scheduling order.
    #[test]
    fn events_delivered_in_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut sim = Simulation::new(Recorder { seen: Vec::new() });
        for &t in &times {
            sim.schedule(SimTime::from_micros(t), ());
        }
        sim.run();
        let seen = &sim.model().seen;
        prop_assert_eq!(seen.len(), times.len());
        for w in seen.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// run_until never passes the horizon and leaves later events queued.
    #[test]
    fn run_until_respects_horizon(times in prop::collection::vec(0u64..1_000, 1..100), horizon in 0u64..1_000) {
        let mut sim = Simulation::new(Recorder { seen: Vec::new() });
        for &t in &times {
            sim.schedule(SimTime::from_secs(t), ());
        }
        let stats = sim.run_until(SimTime::from_secs(horizon));
        let expected = times.iter().filter(|&&t| t <= horizon).count() as u64;
        prop_assert_eq!(stats.events_processed, expected);
        prop_assert_eq!(sim.now(), SimTime::from_secs(horizon));
    }

    /// Time arithmetic is consistent: (t + d) − t == d.
    #[test]
    fn time_arithmetic_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_micros(t);
        let d = SimDuration::from_micros(d);
        prop_assert_eq!((t + d) - t, d);
    }

    /// Exponential samples are non-negative and mean-consistent.
    #[test]
    fn exponential_mean(rate in 0.1f64..20.0, seed in 0u64..1_000) {
        let dist = Exp::new(rate).expect("valid");
        let mut rng = SimRng::seed_from_u64(seed);
        let n = 4_000;
        let mut total = 0.0;
        for _ in 0..n {
            let x = dist.sample(&mut rng);
            prop_assert!(x >= 0.0);
            total += x;
        }
        let mean = total / n as f64;
        let expected = 1.0 / rate;
        prop_assert!((mean - expected).abs() < 6.0 * expected / (n as f64).sqrt() + 0.02,
            "mean {mean} vs expected {expected}");
    }

    /// Poisson mean tracks its parameter across both sampling regimes.
    #[test]
    fn poisson_mean(lambda in 0.2f64..80.0, seed in 0u64..500) {
        let dist = Poisson::new(lambda).expect("valid");
        let mut rng = SimRng::seed_from_u64(seed);
        let n = 3_000;
        let total: u64 = (0..n).map(|_| dist.sample(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        let tolerance = 6.0 * (lambda / n as f64).sqrt() + 0.05;
        prop_assert!((mean - lambda).abs() < tolerance, "mean {mean} vs lambda {lambda}");
    }

    /// Geometric mean matches (1−p)/p.
    #[test]
    fn geometric_mean(p in 0.05f64..1.0, seed in 0u64..500) {
        let dist = Geometric::new(p).expect("valid");
        let mut rng = SimRng::seed_from_u64(seed);
        let n = 4_000;
        let total: u64 = (0..n).map(|_| dist.sample(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        let expected = (1.0 - p) / p;
        let sd = ((1.0 - p).max(1e-9)).sqrt() / p;
        prop_assert!((mean - expected).abs() < 6.0 * sd / (n as f64).sqrt() + 0.05,
            "mean {mean} vs expected {expected}");
    }

    /// Alias tables only ever emit valid indices, with positive-weight
    /// support.
    #[test]
    fn alias_table_support(weights in prop::collection::vec(0.0f64..10.0, 1..50), seed in 0u64..100) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = AliasTable::new(&weights).expect("valid");
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..500 {
            let idx = table.sample(&mut rng);
            prop_assert!(idx < weights.len());
        }
    }
}

//! Property-based tests for the credit market: conservation and policy
//! invariants under arbitrary configurations, fault schedules, shard
//! counts, and checkpoint/resume points.

use proptest::prelude::*;
use scrip_core::des::{FaultSpec, SimDuration, SimRng, SimTime};
use scrip_core::market::{run_market, ChurnConfig, MarketConfig, TopologyKind};
use scrip_core::obs::{probes, Probe, RunRecord, Session};
use scrip_core::policy::{SpendingPolicy, TaxConfig, Taxation};
use scrip_core::pricing::{PricingConfig, PricingModel};
use scrip_core::topology::NodeId;

/// Every stateful built-in probe, so resume must reproduce the full
/// probe state and sharded runs must reproduce the full sample stream.
fn full_probe_set() -> Vec<Box<dyn Probe>> {
    vec![
        Box::new(probes::GiniSeriesProbe),
        Box::new(probes::SnapshotsProbe::new(vec![150, 350])),
        Box::new(probes::ThroughputSeriesProbe::new()),
        Box::new(probes::PopulationSeriesProbe::new()),
        Box::new(probes::FaultSeriesProbe::new()),
    ]
}

/// Runs `config` under a [`Session`] with the full probe set and
/// returns the record plus the finished market's sorted balances.
fn observed_run(config: &MarketConfig, seed: u64, horizon: SimTime) -> (RunRecord, Vec<u64>) {
    let mut session = Session::from_config(config, seed).expect("builds");
    for probe in full_probe_set() {
        session.attach(probe);
    }
    session.run_until(horizon);
    let (record, model) = session.finish();
    let market = model.queue().expect("queue config");
    assert!(market.ledger().conserved(), "books must balance");
    assert!(
        market.in_flight_escrow() <= market.ledger().escrow(),
        "per-trade escrow is a sub-pool of total escrow"
    );
    if !market.faults_enabled() {
        assert_eq!(market.in_flight_escrow(), 0);
    }
    (record, market.balances_sorted())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Closed markets conserve credits exactly, for any profile, pricing
    /// and policy combination.
    #[test]
    fn closed_market_conserves(
        n in 5usize..40,
        c in 1u64..60,
        profile in 0u8..3,
        pricing in 0u8..3,
        tax_on in proptest::bool::ANY,
        dynamic in proptest::bool::ANY,
        seed in 0u64..100,
    ) {
        let mut config = MarketConfig::new(n, c).topology(TopologyKind::Complete);
        config = match profile {
            0 => config.symmetric(),
            1 => config.near_symmetric(0.1),
            _ => config.asymmetric(),
        };
        config = config.pricing(match pricing {
            0 => PricingConfig::Uniform { price: 1 },
            1 => PricingConfig::SellerPoisson { mean: 1.5 },
            _ => PricingConfig::ChunkPoisson { mean: 1.0 },
        });
        if tax_on {
            config = config.tax(TaxConfig::new(0.15, c / 2).expect("valid"));
        }
        if dynamic {
            config = config.spending(SpendingPolicy::Dynamic { threshold: c.max(1) });
        }
        let market = run_market(config, seed, SimTime::from_secs(300)).expect("runs");
        let ledger = market.ledger();
        prop_assert!(ledger.conserved());
        prop_assert_eq!(ledger.total() + ledger.escrow(), n as u64 * c);
    }

    /// Open markets keep exact books: wallets + escrow = minted − burned.
    #[test]
    fn open_market_books_balance(
        n in 5usize..30,
        arrival in 0.05f64..1.0,
        lifespan in 50.0f64..500.0,
        seed in 0u64..100,
    ) {
        let churn = ChurnConfig::new(arrival, lifespan, 5).expect("valid");
        let config = MarketConfig::new(n, 10)
            .topology(TopologyKind::Complete)
            .churn(churn);
        let market = run_market(config, seed, SimTime::from_secs(400)).expect("runs");
        prop_assert!(market.ledger().conserved());
    }

    /// Taxation never assesses more than the income, and expectation is
    /// proportional to the rate.
    #[test]
    fn tax_assessment_bounded(
        rate in 0.01f64..1.0,
        threshold in 0u64..100,
        income in 1u64..50,
        wealth in 0u64..500,
        seed in 0u64..100,
    ) {
        let tax = Taxation::new(TaxConfig::new(rate, threshold).expect("valid"));
        let mut rng = SimRng::seed_from_u64(seed);
        let due = tax.assess(income, wealth, &mut rng);
        prop_assert!(due <= income);
        if wealth <= threshold {
            prop_assert_eq!(due, 0);
        }
    }

    /// Spending policies never reduce the rate below the base, and the
    /// dynamic policy is monotone in wealth.
    #[test]
    fn spending_policy_monotone(base in 0.1f64..10.0, threshold in 1u64..1_000, w1 in 0u64..10_000, w2 in 0u64..10_000) {
        let policy = SpendingPolicy::Dynamic { threshold };
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        let r_lo = policy.effective_rate(base, lo);
        let r_hi = policy.effective_rate(base, hi);
        prop_assert!(r_lo >= base - 1e-12);
        prop_assert!(r_hi >= r_lo - 1e-12);
    }

    /// Pricing models always quote at least 1 credit and are
    /// deterministic per (seller, chunk).
    #[test]
    fn pricing_quotes_are_stable(pricing in 0u8..3, chunk in 0u64..10_000, seed in 0u64..100) {
        let peers: Vec<NodeId> = (0..10).map(NodeId::from_raw).collect();
        let config = match pricing {
            0 => PricingConfig::Uniform { price: 2 },
            1 => PricingConfig::SellerPoisson { mean: 1.0 },
            _ => PricingConfig::ChunkPoisson { mean: 1.0 },
        };
        let mut rng = SimRng::seed_from_u64(seed);
        let model = PricingModel::realize(config, &peers, &mut rng).expect("valid");
        for &s in &peers {
            let p1 = model.price(s, chunk);
            let p2 = model.price(s, chunk);
            prop_assert!(p1 >= 1);
            prop_assert_eq!(p1, p2);
        }
    }
}

proptest! {
    // Heavier properties: each case runs several full markets, so fewer
    // cases keep the suite fast while still sweeping the fault space.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Credit conservation and escrow accounting hold for arbitrary
    /// fault schedules composed with churn, and the run is
    /// byte-identical across shard counts 1, 2, and 8 — records,
    /// probe series, and final balances alike.
    #[test]
    fn faulted_market_is_conserved_and_shard_invariant(
        drop_rate in 0.0f64..0.15,
        defect_rate in 0.0f64..0.10,
        delay_rate in 0.0f64..0.10,
        crash_fraction in 0.0f64..0.20,
        churn_on in proptest::bool::ANY,
        seed in 0u64..50,
    ) {
        let spec = FaultSpec {
            drop_rate,
            defect_rate,
            delay_rate,
            crash_fraction,
            onset: SimTime::from_secs(30),
            ..FaultSpec::default()
        };
        let mut config = MarketConfig::new(30, 20)
            .topology(TopologyKind::Complete)
            .faults(spec)
            .sample_interval(SimDuration::from_secs(100));
        if churn_on {
            config = config.churn(ChurnConfig::new(0.3, 200.0, 8).expect("valid"));
        }
        let horizon = SimTime::from_secs(400);
        let (serial, balances) = observed_run(&config, seed, horizon);
        for shards in [2usize, 8] {
            let sharded = config.clone().shards(shards);
            let (record, sharded_balances) = observed_run(&sharded, seed, horizon);
            prop_assert_eq!(&record, &serial, "diverged at {} shards", shards);
            prop_assert_eq!(&sharded_balances, &balances);
        }
    }

    /// Checkpointing at an arbitrary point mid-run and resuming is
    /// byte-identical to the uninterrupted run — under an active fault
    /// plan and churn, including every probe's series.
    #[test]
    fn resume_at_random_checkpoint_matches_straight_run(
        stop_secs in 1u64..800,
        drop_rate in 0.0f64..0.15,
        crash_fraction in 0.0f64..0.15,
        seed in 0u64..50,
    ) {
        let spec = FaultSpec {
            drop_rate,
            defect_rate: 0.05,
            delay_rate: 0.05,
            crash_fraction,
            onset: SimTime::from_secs(50),
            ..FaultSpec::default()
        };
        let config = MarketConfig::new(30, 20)
            .topology(TopologyKind::Complete)
            .faults(spec)
            .churn(ChurnConfig::new(0.3, 250.0, 8).expect("valid"))
            .sample_interval(SimDuration::from_secs(100));
        let horizon = SimTime::from_secs(800);
        let (direct, balances) = observed_run(&config, seed, horizon);

        let mut session = Session::from_config(&config, seed).expect("builds");
        for probe in full_probe_set() {
            session.attach(probe);
        }
        session.run_until(SimTime::from_secs(stop_secs));
        let bytes = session.checkpoint().expect("checkpoints");
        drop(session);
        let mut resumed = Session::resume(&config, full_probe_set(), &bytes).expect("resumes");
        // Re-checkpointing the freshly resumed session reproduces the
        // snapshot bit for bit.
        prop_assert_eq!(resumed.checkpoint().expect("re-checkpoints"), bytes);
        resumed.run_until(horizon);
        let (record, model) = resumed.finish();
        let market = model.queue().expect("queue config");
        prop_assert!(market.ledger().conserved());
        prop_assert_eq!(record, direct, "diverged after resume at {}s", stop_secs);
        prop_assert_eq!(market.balances_sorted(), balances);
    }
}

//! Property-based tests for the credit market: conservation and policy
//! invariants under arbitrary configurations.

use proptest::prelude::*;
use scrip_core::des::{SimRng, SimTime};
use scrip_core::market::{run_market, ChurnConfig, MarketConfig, TopologyKind};
use scrip_core::policy::{SpendingPolicy, TaxConfig, Taxation};
use scrip_core::pricing::{PricingConfig, PricingModel};
use scrip_core::topology::NodeId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Closed markets conserve credits exactly, for any profile, pricing
    /// and policy combination.
    #[test]
    fn closed_market_conserves(
        n in 5usize..40,
        c in 1u64..60,
        profile in 0u8..3,
        pricing in 0u8..3,
        tax_on in proptest::bool::ANY,
        dynamic in proptest::bool::ANY,
        seed in 0u64..100,
    ) {
        let mut config = MarketConfig::new(n, c).topology(TopologyKind::Complete);
        config = match profile {
            0 => config.symmetric(),
            1 => config.near_symmetric(0.1),
            _ => config.asymmetric(),
        };
        config = config.pricing(match pricing {
            0 => PricingConfig::Uniform { price: 1 },
            1 => PricingConfig::SellerPoisson { mean: 1.5 },
            _ => PricingConfig::ChunkPoisson { mean: 1.0 },
        });
        if tax_on {
            config = config.tax(TaxConfig::new(0.15, c / 2).expect("valid"));
        }
        if dynamic {
            config = config.spending(SpendingPolicy::Dynamic { threshold: c.max(1) });
        }
        let market = run_market(config, seed, SimTime::from_secs(300)).expect("runs");
        let ledger = market.ledger();
        prop_assert!(ledger.conserved());
        prop_assert_eq!(ledger.total() + ledger.escrow(), n as u64 * c);
    }

    /// Open markets keep exact books: wallets + escrow = minted − burned.
    #[test]
    fn open_market_books_balance(
        n in 5usize..30,
        arrival in 0.05f64..1.0,
        lifespan in 50.0f64..500.0,
        seed in 0u64..100,
    ) {
        let churn = ChurnConfig::new(arrival, lifespan, 5).expect("valid");
        let config = MarketConfig::new(n, 10)
            .topology(TopologyKind::Complete)
            .churn(churn);
        let market = run_market(config, seed, SimTime::from_secs(400)).expect("runs");
        prop_assert!(market.ledger().conserved());
    }

    /// Taxation never assesses more than the income, and expectation is
    /// proportional to the rate.
    #[test]
    fn tax_assessment_bounded(
        rate in 0.01f64..1.0,
        threshold in 0u64..100,
        income in 1u64..50,
        wealth in 0u64..500,
        seed in 0u64..100,
    ) {
        let tax = Taxation::new(TaxConfig::new(rate, threshold).expect("valid"));
        let mut rng = SimRng::seed_from_u64(seed);
        let due = tax.assess(income, wealth, &mut rng);
        prop_assert!(due <= income);
        if wealth <= threshold {
            prop_assert_eq!(due, 0);
        }
    }

    /// Spending policies never reduce the rate below the base, and the
    /// dynamic policy is monotone in wealth.
    #[test]
    fn spending_policy_monotone(base in 0.1f64..10.0, threshold in 1u64..1_000, w1 in 0u64..10_000, w2 in 0u64..10_000) {
        let policy = SpendingPolicy::Dynamic { threshold };
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        let r_lo = policy.effective_rate(base, lo);
        let r_hi = policy.effective_rate(base, hi);
        prop_assert!(r_lo >= base - 1e-12);
        prop_assert!(r_hi >= r_lo - 1e-12);
    }

    /// Pricing models always quote at least 1 credit and are
    /// deterministic per (seller, chunk).
    #[test]
    fn pricing_quotes_are_stable(pricing in 0u8..3, chunk in 0u64..10_000, seed in 0u64..100) {
        let peers: Vec<NodeId> = (0..10).map(NodeId::from_raw).collect();
        let config = match pricing {
            0 => PricingConfig::Uniform { price: 2 },
            1 => PricingConfig::SellerPoisson { mean: 1.0 },
            _ => PricingConfig::ChunkPoisson { mean: 1.0 },
        };
        let mut rng = SimRng::seed_from_u64(seed);
        let model = PricingModel::realize(config, &peers, &mut rng).expect("valid");
        for &s in &peers {
            let p1 = model.price(s, chunk);
            let p2 = model.price(s, chunk);
            prop_assert!(p1 >= 1);
            prop_assert_eq!(p1, p2);
        }
    }
}

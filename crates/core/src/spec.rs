//! Declarative, string-keyed market descriptions.
//!
//! [`MarketSpec`] is the bridge between scenario files and
//! [`MarketConfig`]: every knob of the credit market is addressable by a
//! stable kebab-case key with a compact textual value syntax, so an
//! experiment harness can construct, override, and serialize market
//! configurations without writing Rust. The spec is a plain-data
//! description — nothing is realized (no graphs, no RNG draws) until
//! [`MarketSpec::build`] produces a validated [`MarketConfig`] for the
//! simulator.
//!
//! | key                     | value syntax                                   |
//! |-------------------------|------------------------------------------------|
//! | `peers`                 | integer ≥ 2                                    |
//! | `credits`               | integer ≥ 0 (initial credits per peer, `c`)    |
//! | `base-rate`             | float > 0 (credits/sec, `μ_s`)                 |
//! | `profile`               | `symmetric` \| `near-symmetric:SPREAD` \| `asymmetric` |
//! | `pricing`               | `uniform:PRICE` \| `seller-poisson:MEAN` \| `chunk-poisson:MEAN` |
//! | `spending`              | `fixed` \| `dynamic:THRESHOLD`                 |
//! | `tax`                   | `none` \| `RATE:THRESHOLD`                     |
//! | `churn`                 | `none` \| `ARRIVAL:LIFESPAN:ATTACH`            |
//! | `topology`              | `scale-free` \| `complete` \| `ring` \| `regular:DEGREE` |
//! | `sample`                | float > 0 (Gini sampling interval, seconds)    |
//! | `availability-feedback` | `true` \| `false`                              |
//! | `shards`                | integer ≥ 1 (execution shards; output identical) |
//! | `streaming`             | `none` \| `paced:CHUNK_RATE` (chunk-level market) |
//!
//! Setting `streaming = paced:CHUNK_RATE` switches the realized market
//! to *chunk granularity*: the mesh-pull streaming protocol
//! ([`scrip_streaming::StreamingConfig::market_paced`] at the given
//! chunk rate) runs on the overlay and every chunk transfer settles
//! through the shared ledger. The `streaming` value is a **preset**:
//! every (re-)set of the key reinitializes *all* protocol knobs to the
//! `market_paced` defaults for that rate, so customize with the
//! sub-keys *after* it — sweeping or overriding `streaming` itself
//! deliberately resets any sub-key customization (canonical
//! serialization always emits `streaming` before its sub-keys, so
//! round-trips are exact). The protocol knobs below are addressable
//! while streaming is enabled (setting any of them while `streaming`
//! is `none` is an error — enable streaming first):
//!
//! | key                          | value syntax                            |
//! |------------------------------|-----------------------------------------|
//! | `streaming.window`           | integer ≥ 1 (buffer-map width, chunks)  |
//! | `streaming.startup`          | integer (chunks buffered before playback) |
//! | `streaming.max-pending`      | integer ≥ 1 (in-flight requests per peer) |
//! | `streaming.max-uploads`      | integer ≥ 1 (concurrent uploads per peer) |
//! | `streaming.source-uploads`   | integer ≥ 1 (concurrent source uploads)   |
//! | `streaming.source-degree`    | `all` \| integer ≥ 1 (source-fed peers)  |
//! | `streaming.transfer-time`    | float > 0 (mean chunk transfer secs)     |
//! | `streaming.schedule-interval`| float > 0 (pull-round period, secs)      |
//! | `streaming.strategy`         | `rarest-first` \| `deadline-first`       |
//! | `streaming.provider`         | `random` \| `least-uploads` \| `availability-weighted` |
//! | `streaming.serve-behind`     | integer (chunks kept behind playback)    |
//!
//! The `faults` toggle enables deterministic fault injection
//! ([`scrip_des::FaultSpec`]): delivery drops, seller defections,
//! delivery delays, and peer crashes, with escrow-backed retry and
//! refund recovery. Like `streaming`, the toggle is a **preset**: every
//! (re-)set of `faults` to a rate tuple reinitializes the timing
//! sub-keys to the [`scrip_des::FaultSpec::default`] constants, so
//! customize with the sub-keys *after* it. Sub-keys are refused (and
//! not serialized) while `faults` is `none`:
//!
//! | key                   | value syntax                                     |
//! |-----------------------|--------------------------------------------------|
//! | `faults`              | `none` \| `DROP:DEFECT:DELAY:CRASH` (probabilities in [0, 1]) |
//! | `faults.onset`        | float ≥ 0 (no fault fires before this, seconds)  |
//! | `faults.retries`      | integer (max retry attempts before refund)       |
//! | `faults.delivery-time`| float > 0 (mean delivery latency, seconds)       |
//! | `faults.delay-time`   | float > 0 (mean delay-fault penalty, seconds)    |
//! | `faults.backoff`      | `BASE:CAP` (retry backoff, seconds)              |
//! | `faults.crash-spread` | float > 0 (mean onset→crash delay, seconds)      |
//!
//! ```
//! use scrip_core::spec::MarketSpec;
//!
//! # fn main() -> Result<(), scrip_core::CoreError> {
//! let mut spec = MarketSpec::default();
//! spec.set("peers", "60")?;
//! spec.set("credits", "200")?;
//! spec.set("profile", "near-symmetric:0.03")?;
//! spec.set("tax", "0.2:50")?;
//! let config = spec.build()?;
//! assert_eq!(config.n, 60);
//! assert_eq!(config.initial_credits, 200);
//! # Ok(())
//! # }
//! ```

use scrip_des::{FaultSpec, SimDuration, SimTime};
use scrip_streaming::{ChunkStrategy, ProviderSelection, StreamingConfig};

use crate::error::CoreError;
use crate::market::{ChurnConfig, MarketConfig, TopologyKind};
use crate::model::UtilizationProfile;
use crate::policy::{SpendingPolicy, TaxConfig};
use crate::pricing::PricingConfig;

/// The spec keys, in canonical serialization order. The `streaming`
/// toggle precedes its sub-keys so serialized specs always re-parse
/// (sub-keys require streaming to be enabled).
pub const MARKET_SPEC_KEYS: [&str; 31] = [
    "peers",
    "credits",
    "base-rate",
    "profile",
    "pricing",
    "spending",
    "tax",
    "churn",
    "topology",
    "sample",
    "availability-feedback",
    "shards",
    "faults",
    "faults.onset",
    "faults.retries",
    "faults.delivery-time",
    "faults.delay-time",
    "faults.backoff",
    "faults.crash-spread",
    "streaming",
    "streaming.window",
    "streaming.startup",
    "streaming.max-pending",
    "streaming.max-uploads",
    "streaming.source-uploads",
    "streaming.source-degree",
    "streaming.transfer-time",
    "streaming.schedule-interval",
    "streaming.strategy",
    "streaming.provider",
    "streaming.serve-behind",
];

/// A declarative market description with string-keyed access.
///
/// Wraps a [`MarketConfig`] (the paper's Sec. VI defaults: 500 peers,
/// 100 credits each, asymmetric utilization) and exposes it through the
/// key/value grammar documented at the [module level](self).
#[derive(Clone, Debug, PartialEq)]
pub struct MarketSpec {
    config: MarketConfig,
}

impl Default for MarketSpec {
    fn default() -> Self {
        MarketSpec {
            config: MarketConfig::new(500, 100),
        }
    }
}

fn bad(key: &str, value: &str, expected: &str) -> CoreError {
    CoreError::Config(format!(
        "invalid value {value:?} for key {key:?}: expected {expected}"
    ))
}

fn parse_u64(key: &str, value: &str) -> Result<u64, CoreError> {
    value
        .parse::<u64>()
        .map_err(|_| bad(key, value, "a non-negative integer"))
}

fn parse_usize(key: &str, value: &str) -> Result<usize, CoreError> {
    value
        .parse::<usize>()
        .map_err(|_| bad(key, value, "a non-negative integer"))
}

fn parse_f64(key: &str, value: &str) -> Result<f64, CoreError> {
    value
        .parse::<f64>()
        .ok()
        .filter(|x| x.is_finite())
        .ok_or_else(|| bad(key, value, "a finite number"))
}

impl MarketSpec {
    /// A spec with the given population and per-peer initial credits, all
    /// other knobs at the paper's defaults.
    pub fn new(peers: usize, credits: u64) -> Self {
        MarketSpec {
            config: MarketConfig::new(peers, credits),
        }
    }

    /// Wraps an existing configuration.
    pub fn from_config(config: MarketConfig) -> Self {
        MarketSpec { config }
    }

    /// Read-only view of the wrapped configuration.
    pub fn config(&self) -> &MarketConfig {
        &self.config
    }

    /// Validates the spec and returns the configuration it describes.
    ///
    /// # Errors
    /// Returns [`CoreError::Config`] for out-of-range parameter
    /// combinations.
    pub fn build(&self) -> Result<MarketConfig, CoreError> {
        self.config.validate()?;
        Ok(self.config.clone())
    }

    /// Sets `key` to the textual `value` (grammar in the
    /// [module docs](self)).
    ///
    /// # Errors
    /// Returns [`CoreError::Config`] for unknown keys or malformed
    /// values.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), CoreError> {
        match key {
            "peers" => {
                let n = parse_usize(key, value)?;
                if n < 2 {
                    return Err(bad(key, value, "an integer >= 2"));
                }
                self.config.n = n;
            }
            "credits" => self.config.initial_credits = parse_u64(key, value)?,
            "base-rate" => {
                let rate = parse_f64(key, value)?;
                if rate <= 0.0 {
                    return Err(bad(key, value, "a rate > 0"));
                }
                self.config.base_rate = rate;
            }
            "profile" => {
                self.config.profile = match value.split_once(':') {
                    None if value == "symmetric" => UtilizationProfile::Symmetric,
                    None if value == "asymmetric" => UtilizationProfile::Asymmetric,
                    Some(("near-symmetric", spread)) => {
                        let spread = parse_f64(key, spread)?;
                        if !(0.0..1.0).contains(&spread) {
                            return Err(bad(key, value, "a spread in [0, 1)"));
                        }
                        UtilizationProfile::NearSymmetric { spread }
                    }
                    _ => {
                        return Err(bad(
                            key,
                            value,
                            "symmetric | near-symmetric:SPREAD | asymmetric",
                        ))
                    }
                };
            }
            "pricing" => {
                let pricing = match value.split_once(':') {
                    Some(("uniform", p)) => PricingConfig::Uniform {
                        price: parse_u64(key, p)?,
                    },
                    Some(("seller-poisson", m)) => PricingConfig::SellerPoisson {
                        mean: parse_f64(key, m)?,
                    },
                    Some(("chunk-poisson", m)) => PricingConfig::ChunkPoisson {
                        mean: parse_f64(key, m)?,
                    },
                    _ => {
                        return Err(bad(
                            key,
                            value,
                            "uniform:PRICE | seller-poisson:MEAN | chunk-poisson:MEAN",
                        ))
                    }
                };
                pricing.validate()?;
                self.config.pricing = pricing;
            }
            "spending" => {
                self.config.spending = match value.split_once(':') {
                    None if value == "fixed" => SpendingPolicy::Fixed,
                    Some(("dynamic", t)) => SpendingPolicy::Dynamic {
                        threshold: parse_u64(key, t)?,
                    },
                    _ => return Err(bad(key, value, "fixed | dynamic:THRESHOLD")),
                };
            }
            "tax" => {
                self.config.tax = if value == "none" {
                    None
                } else {
                    let (rate, threshold) = value
                        .split_once(':')
                        .ok_or_else(|| bad(key, value, "none | RATE:THRESHOLD"))?;
                    Some(TaxConfig::new(
                        parse_f64(key, rate)?,
                        parse_u64(key, threshold)?,
                    )?)
                };
            }
            "churn" => {
                self.config.churn = if value == "none" {
                    None
                } else {
                    let parts: Vec<&str> = value.split(':').collect();
                    let [arrival, lifespan, attach] = parts[..] else {
                        return Err(bad(key, value, "none | ARRIVAL:LIFESPAN:ATTACH"));
                    };
                    Some(ChurnConfig::new(
                        parse_f64(key, arrival)?,
                        parse_f64(key, lifespan)?,
                        parse_usize(key, attach)?,
                    )?)
                };
            }
            "topology" => {
                self.config.topology = match value.split_once(':') {
                    None if value == "scale-free" => TopologyKind::ScaleFree,
                    None if value == "complete" => TopologyKind::Complete,
                    None if value == "ring" => TopologyKind::Ring,
                    Some(("regular", d)) => TopologyKind::Regular(parse_usize(key, d)?),
                    _ => {
                        return Err(bad(
                            key,
                            value,
                            "scale-free | complete | ring | regular:DEGREE",
                        ))
                    }
                };
            }
            "sample" => {
                let secs = parse_f64(key, value)?;
                if secs <= 0.0 {
                    return Err(bad(key, value, "a positive number of seconds"));
                }
                self.config.sample_interval = SimDuration::from_secs_f64(secs);
            }
            "availability-feedback" => {
                self.config.availability_feedback = match value {
                    "true" => true,
                    "false" => false,
                    _ => return Err(bad(key, value, "true | false")),
                };
            }
            "shards" => {
                let shards = parse_usize(key, value)?;
                if shards == 0 {
                    return Err(bad(key, value, "an integer >= 1"));
                }
                self.config.shards = shards;
            }
            "faults" => {
                self.config.faults = if value == "none" {
                    None
                } else {
                    let parts: Vec<&str> = value.split(':').collect();
                    let [drop, defect, delay, crash] = parts[..] else {
                        return Err(bad(key, value, "none | DROP:DEFECT:DELAY:CRASH"));
                    };
                    let spec = FaultSpec {
                        drop_rate: parse_f64(key, drop)?,
                        defect_rate: parse_f64(key, defect)?,
                        delay_rate: parse_f64(key, delay)?,
                        crash_fraction: parse_f64(key, crash)?,
                        ..FaultSpec::default()
                    };
                    spec.validate().map_err(CoreError::Config)?;
                    Some(spec)
                };
            }
            sub if sub.starts_with("faults.") => {
                let Some(current) = self.config.faults.as_ref() else {
                    return Err(CoreError::Config(format!(
                        "key {key:?} requires fault injection: set `faults` to \
                         `DROP:DEFECT:DELAY:CRASH` first (in scenario files, \
                         `faults` must precede its sub-keys)"
                    )));
                };
                // Mutate a copy and validate before committing, so a
                // failed set leaves the spec untouched and valid.
                let mut faults = *current;
                match sub {
                    "faults.onset" => {
                        let secs = parse_f64(key, value)?;
                        if secs < 0.0 {
                            return Err(bad(key, value, "a non-negative number of seconds"));
                        }
                        faults.onset = SimTime::from_secs_f64(secs);
                    }
                    "faults.retries" => {
                        faults.max_retries = value
                            .parse::<u32>()
                            .map_err(|_| bad(key, value, "a non-negative integer"))?;
                    }
                    "faults.delivery-time" => {
                        faults.delivery_mean = SimDuration::from_secs_f64(parse_f64(key, value)?);
                    }
                    "faults.delay-time" => {
                        faults.delay_mean = SimDuration::from_secs_f64(parse_f64(key, value)?);
                    }
                    "faults.backoff" => {
                        let (base, cap) = value
                            .split_once(':')
                            .ok_or_else(|| bad(key, value, "BASE:CAP seconds"))?;
                        faults.backoff_base = SimDuration::from_secs_f64(parse_f64(key, base)?);
                        faults.backoff_cap = SimDuration::from_secs_f64(parse_f64(key, cap)?);
                    }
                    "faults.crash-spread" => {
                        faults.crash_spread = SimDuration::from_secs_f64(parse_f64(key, value)?);
                    }
                    _ => {
                        return Err(CoreError::Config(format!(
                            "unknown market key {key:?} (known keys: {})",
                            MARKET_SPEC_KEYS.join(", ")
                        )))
                    }
                }
                faults
                    .validate()
                    .map_err(|e| CoreError::Config(format!("{key}: {e}")))?;
                self.config.faults = Some(faults);
            }
            "streaming" => {
                self.config.streaming = if value == "none" {
                    None
                } else {
                    match value.split_once(':') {
                        Some(("paced", rate)) => {
                            let rate = parse_f64(key, rate)?;
                            if rate <= 0.0 {
                                return Err(bad(key, value, "a chunk rate > 0"));
                            }
                            Some(StreamingConfig::market_paced(rate))
                        }
                        _ => return Err(bad(key, value, "none | paced:CHUNK_RATE")),
                    }
                };
            }
            sub if sub.starts_with("streaming.") => {
                let Some(current) = self.config.streaming.as_ref() else {
                    return Err(CoreError::Config(format!(
                        "key {key:?} requires a streaming market: set \
                         `streaming` to `paced:CHUNK_RATE` first (in scenario \
                         files, `streaming` must precede its sub-keys)"
                    )));
                };
                // Mutate a copy and validate the combined protocol
                // config before committing, so a failed set leaves the
                // spec untouched and valid.
                let mut streaming = current.clone();
                match sub {
                    "streaming.window" => streaming.window = parse_usize(key, value)?,
                    "streaming.startup" => streaming.startup_buffer = parse_usize(key, value)?,
                    "streaming.max-pending" => streaming.max_pending = parse_usize(key, value)?,
                    "streaming.max-uploads" => streaming.max_uploads = parse_usize(key, value)?,
                    "streaming.source-uploads" => {
                        streaming.source_uploads = parse_usize(key, value)?;
                    }
                    "streaming.source-degree" => {
                        streaming.source_degree = if value == "all" {
                            usize::MAX
                        } else {
                            parse_usize(key, value)?
                        };
                    }
                    "streaming.transfer-time" => {
                        streaming.transfer_time_mean = parse_f64(key, value)?;
                    }
                    "streaming.schedule-interval" => {
                        let secs = parse_f64(key, value)?;
                        if secs <= 0.0 {
                            return Err(bad(key, value, "a positive number of seconds"));
                        }
                        streaming.schedule_interval = SimDuration::from_secs_f64(secs);
                    }
                    "streaming.strategy" => {
                        streaming.strategy = match value {
                            "rarest-first" => ChunkStrategy::RarestFirst,
                            "deadline-first" => ChunkStrategy::DeadlineFirst,
                            _ => return Err(bad(key, value, "rarest-first | deadline-first")),
                        };
                    }
                    "streaming.provider" => {
                        streaming.provider_selection = match value {
                            "random" => ProviderSelection::Random,
                            "least-uploads" => ProviderSelection::LeastUploads,
                            "availability-weighted" => ProviderSelection::AvailabilityWeighted,
                            _ => {
                                return Err(bad(
                                    key,
                                    value,
                                    "random | least-uploads | availability-weighted",
                                ))
                            }
                        };
                    }
                    "streaming.serve-behind" => {
                        streaming.serve_behind = parse_usize(key, value)?;
                    }
                    _ => {
                        return Err(CoreError::Config(format!(
                            "unknown market key {key:?} (known keys: {})",
                            MARKET_SPEC_KEYS.join(", ")
                        )))
                    }
                }
                streaming
                    .validate()
                    .map_err(|e| CoreError::Config(format!("{key}: {e}")))?;
                self.config.streaming = Some(streaming);
            }
            _ => {
                return Err(CoreError::Config(format!(
                    "unknown market key {key:?} (known keys: {})",
                    MARKET_SPEC_KEYS.join(", ")
                )))
            }
        }
        Ok(())
    }

    /// The canonical textual value of `key`, or [`None`] for unknown
    /// keys. `spec.set(key, &spec.get(key)?)` is always a no-op.
    pub fn get(&self, key: &str) -> Option<String> {
        let c = &self.config;
        Some(match key {
            "peers" => c.n.to_string(),
            "credits" => c.initial_credits.to_string(),
            "base-rate" => c.base_rate.to_string(),
            "profile" => match c.profile {
                UtilizationProfile::Symmetric => "symmetric".into(),
                UtilizationProfile::NearSymmetric { spread } => format!("near-symmetric:{spread}"),
                UtilizationProfile::Asymmetric => "asymmetric".into(),
            },
            "pricing" => match c.pricing {
                PricingConfig::Uniform { price } => format!("uniform:{price}"),
                PricingConfig::SellerPoisson { mean } => format!("seller-poisson:{mean}"),
                PricingConfig::ChunkPoisson { mean } => format!("chunk-poisson:{mean}"),
            },
            "spending" => match c.spending {
                SpendingPolicy::Fixed => "fixed".into(),
                SpendingPolicy::Dynamic { threshold } => format!("dynamic:{threshold}"),
            },
            "tax" => match c.tax {
                None => "none".into(),
                Some(t) => format!("{}:{}", t.rate, t.threshold),
            },
            "churn" => match c.churn {
                None => "none".into(),
                Some(ch) => format!(
                    "{}:{}:{}",
                    ch.arrival_rate, ch.mean_lifespan, ch.attach_degree
                ),
            },
            "topology" => match c.topology {
                TopologyKind::ScaleFree => "scale-free".into(),
                TopologyKind::Complete => "complete".into(),
                TopologyKind::Ring => "ring".into(),
                TopologyKind::Regular(d) => format!("regular:{d}"),
            },
            "sample" => c.sample_interval.as_secs_f64().to_string(),
            "availability-feedback" => c.availability_feedback.to_string(),
            "shards" => c.shards.to_string(),
            "faults" => match &c.faults {
                None => "none".into(),
                Some(f) => format!(
                    "{}:{}:{}:{}",
                    f.drop_rate, f.defect_rate, f.delay_rate, f.crash_fraction
                ),
            },
            sub if sub.starts_with("faults.") => {
                // Sub-keys are only addressable (and only serialized)
                // while fault injection is enabled.
                let f = c.faults.as_ref()?;
                match sub {
                    "faults.onset" => f.onset.as_secs_f64().to_string(),
                    "faults.retries" => f.max_retries.to_string(),
                    "faults.delivery-time" => f.delivery_mean.as_secs_f64().to_string(),
                    "faults.delay-time" => f.delay_mean.as_secs_f64().to_string(),
                    "faults.backoff" => format!(
                        "{}:{}",
                        f.backoff_base.as_secs_f64(),
                        f.backoff_cap.as_secs_f64()
                    ),
                    "faults.crash-spread" => f.crash_spread.as_secs_f64().to_string(),
                    _ => return None,
                }
            }
            "streaming" => match &c.streaming {
                None => "none".into(),
                Some(s) => format!("paced:{}", s.chunk_rate),
            },
            sub if sub.starts_with("streaming.") => {
                // Sub-keys are only addressable (and only serialized)
                // while streaming is enabled.
                let s = c.streaming.as_ref()?;
                match sub {
                    "streaming.window" => s.window.to_string(),
                    "streaming.startup" => s.startup_buffer.to_string(),
                    "streaming.max-pending" => s.max_pending.to_string(),
                    "streaming.max-uploads" => s.max_uploads.to_string(),
                    "streaming.source-uploads" => s.source_uploads.to_string(),
                    "streaming.source-degree" => {
                        if s.source_degree == usize::MAX {
                            "all".into()
                        } else {
                            s.source_degree.to_string()
                        }
                    }
                    "streaming.transfer-time" => s.transfer_time_mean.to_string(),
                    "streaming.schedule-interval" => s.schedule_interval.as_secs_f64().to_string(),
                    "streaming.strategy" => match s.strategy {
                        ChunkStrategy::RarestFirst => "rarest-first".into(),
                        ChunkStrategy::DeadlineFirst => "deadline-first".into(),
                    },
                    "streaming.provider" => match s.provider_selection {
                        ProviderSelection::Random => "random".into(),
                        ProviderSelection::LeastUploads => "least-uploads".into(),
                        ProviderSelection::AvailabilityWeighted => "availability-weighted".into(),
                    },
                    "streaming.serve-behind" => s.serve_behind.to_string(),
                    _ => return None,
                }
            }
            _ => return None,
        })
    }

    /// All `(key, canonical value)` pairs in serialization order.
    /// Streaming sub-keys appear only when streaming is enabled, so a
    /// queue-level spec serializes exactly as it did before the
    /// chunk-level market existed.
    pub fn entries(&self) -> Vec<(&'static str, String)> {
        MARKET_SPEC_KEYS
            .iter()
            .filter_map(|&k| Some((k, self.get(k)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_config() {
        let spec = MarketSpec::default();
        assert_eq!(spec.config(), &MarketConfig::new(500, 100));
        assert_eq!(spec.build().expect("valid").n, 500);
    }

    #[test]
    fn every_key_round_trips_through_get_and_set() {
        let mut spec = MarketSpec::new(60, 12);
        for (key, value) in [
            ("base-rate", "2.5"),
            ("profile", "near-symmetric:0.03"),
            ("pricing", "chunk-poisson:1"),
            ("spending", "dynamic:100"),
            ("tax", "0.2:50"),
            ("churn", "1.5:500:20"),
            ("topology", "regular:8"),
            ("sample", "50"),
            ("availability-feedback", "true"),
            ("streaming", "paced:2"),
            ("shards", "4"),
            ("faults", "0.1:0.05:0.02:0.2"),
            ("faults.onset", "50"),
            ("faults.retries", "5"),
            ("faults.delivery-time", "0.5"),
            ("faults.delay-time", "4"),
            ("faults.backoff", "0.25:20"),
            ("faults.crash-spread", "300"),
            ("streaming.window", "96"),
            ("streaming.startup", "6"),
            ("streaming.max-pending", "8"),
            ("streaming.max-uploads", "2"),
            ("streaming.source-uploads", "6"),
            ("streaming.source-degree", "20"),
            ("streaming.transfer-time", "0.25"),
            ("streaming.schedule-interval", "0.4"),
            ("streaming.strategy", "deadline-first"),
            ("streaming.provider", "availability-weighted"),
            ("streaming.serve-behind", "16"),
        ] {
            spec.set(key, value)
                .unwrap_or_else(|e| panic!("{key}: {e}"));
        }
        // get() returns canonical forms that set() accepts unchanged.
        let mut copy = MarketSpec::default();
        for (key, value) in spec.entries() {
            copy.set(key, &value).expect("canonical value");
        }
        assert_eq!(spec, copy);
        assert_eq!(copy.get("tax").expect("known"), "0.2:50");
        assert_eq!(copy.get("churn").expect("known"), "1.5:500:20");
        assert_eq!(copy.get("profile").expect("known"), "near-symmetric:0.03");
        assert_eq!(copy.get("streaming").expect("known"), "paced:2");
        assert_eq!(copy.get("streaming.window").expect("known"), "96");
        assert_eq!(
            copy.get("streaming.strategy").expect("known"),
            "deadline-first"
        );
        assert_eq!(copy.get("faults").expect("known"), "0.1:0.05:0.02:0.2");
        assert_eq!(copy.get("faults.backoff").expect("known"), "0.25:20");
        assert_eq!(copy.get("faults.retries").expect("known"), "5");
    }

    #[test]
    fn fault_keys_gate_on_the_toggle() {
        let mut spec = MarketSpec::new(40, 20);
        // Sub-keys are refused while faults are disabled…
        let err = spec.set("faults.onset", "50").expect_err("gated");
        assert!(err.to_string().contains("faults"), "{err}");
        assert_eq!(spec.get("faults").expect("known"), "none");
        assert_eq!(spec.get("faults.onset"), None, "hidden while disabled");
        // …and they don't serialize either.
        assert!(spec
            .entries()
            .iter()
            .all(|(k, _)| !k.starts_with("faults.")));

        spec.set("faults", "0.1:0:0:0").expect("enables");
        let f = spec.config().faults.expect("set");
        assert_eq!(f.drop_rate, 0.1);
        assert_eq!(f.max_retries, 3, "sub-keys start at defaults");
        spec.set("faults.onset", "100").expect("sub-key works now");
        spec.build().expect("valid faulty market");

        // Re-setting the toggle resets the sub-keys (preset semantics).
        spec.set("faults", "0.2:0:0:0").expect("re-set");
        assert_eq!(spec.get("faults.onset").expect("known"), "0");

        // A failed sub-key set leaves the spec untouched and valid.
        assert!(spec.set("faults.delivery-time", "0").is_err());
        spec.build().expect("still valid");

        // Disabling faults drops the sub-keys again.
        spec.set("faults", "none").expect("disables");
        assert!(spec.build().expect("valid").faults.is_none());
    }

    #[test]
    fn streaming_keys_gate_on_the_toggle() {
        let mut spec = MarketSpec::new(40, 20);
        // Sub-keys are refused while streaming is disabled…
        let err = spec.set("streaming.window", "64").expect_err("gated");
        assert!(err.to_string().contains("streaming"), "{err}");
        assert_eq!(spec.get("streaming").expect("known"), "none");
        assert_eq!(spec.get("streaming.window"), None, "hidden while disabled");
        // …and the toggle doesn't serialize them either.
        assert!(spec.entries().iter().all(|(k, _)| !k.contains('.')));

        spec.set("streaming", "paced:1").expect("enables");
        assert_eq!(
            spec.config().streaming.as_ref().expect("set").chunk_rate,
            1.0
        );
        // market_paced source degree is "all".
        assert_eq!(spec.get("streaming.source-degree").expect("known"), "all");
        spec.set("streaming.source-degree", "all")
            .expect("round trips");
        spec.set("streaming.window", "48")
            .expect("sub-key works now");
        // All keys but the six faults sub-keys (faults stay disabled).
        assert_eq!(spec.entries().len(), MARKET_SPEC_KEYS.len() - 6);
        spec.build().expect("valid streaming market");

        // A failed sub-key set leaves the spec untouched and valid.
        assert!(
            spec.set("streaming.startup", "48").is_err(),
            "startup >= window"
        );
        assert_eq!(spec.get("streaming.startup").expect("known"), "8");
        spec.build().expect("still valid");

        // Disabling streaming drops the sub-keys again.
        spec.set("streaming", "none").expect("disables");
        assert!(spec.build().expect("valid").streaming.is_none());
    }

    #[test]
    fn variant_values_parse() {
        let mut spec = MarketSpec::default();
        spec.set("profile", "symmetric").expect("valid");
        assert_eq!(spec.config().profile, UtilizationProfile::Symmetric);
        spec.set("profile", "asymmetric").expect("valid");
        spec.set("pricing", "uniform:3").expect("valid");
        assert_eq!(spec.config().pricing, PricingConfig::Uniform { price: 3 });
        spec.set("pricing", "seller-poisson:2.0").expect("valid");
        spec.set("spending", "fixed").expect("valid");
        spec.set("tax", "none").expect("valid");
        assert_eq!(spec.config().tax, None);
        spec.set("churn", "none").expect("valid");
        for t in ["scale-free", "complete", "ring"] {
            spec.set("topology", t).expect("valid");
        }
    }

    #[test]
    fn malformed_values_are_rejected() {
        let mut spec = MarketSpec::default();
        for (key, value) in [
            ("peers", "1"),
            ("peers", "many"),
            ("credits", "-3"),
            ("base-rate", "0"),
            ("base-rate", "inf"),
            ("profile", "lopsided"),
            ("profile", "near-symmetric:2"),
            ("pricing", "uniform:0"),
            ("pricing", "free"),
            ("spending", "dynamic"),
            ("tax", "2.0:50"),
            ("tax", "0.1"),
            ("churn", "1.0:500"),
            ("topology", "torus"),
            ("sample", "0"),
            ("availability-feedback", "yes"),
            ("shards", "0"),
            ("shards", "two"),
            ("streaming", "fast"),
            ("streaming", "paced:0"),
            ("streaming.window", "64"),
            ("streaming.bogus", "1"),
            ("faults", "0.1"),
            ("faults", "1.5:0:0:0"),
            ("faults", "0.1:0.95:0:0"),
            ("faults.onset", "50"),
            ("color", "red"),
        ] {
            assert!(spec.set(key, value).is_err(), "{key}={value} should fail");
        }
        // The failed sets left the spec valid.
        spec.build().expect("still valid");
    }

    #[test]
    fn unknown_key_lists_known_keys() {
        let err = MarketSpec::default()
            .set("colour", "blue")
            .expect_err("unknown");
        assert!(err.to_string().contains("peers"), "{err}");
        assert_eq!(MarketSpec::default().get("colour"), None);
    }
}

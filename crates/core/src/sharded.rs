//! Sharded execution of the queue-level credit market.
//!
//! [`ShardedMarket`] wraps a [`CreditMarket`] in the
//! [`scrip_des::ShardModel`] contract so one run can be partitioned
//! over the [`scrip_des::ShardedSimulation`] kernel:
//!
//! * the overlay is split into balanced regions with
//!   [`Partition::regions`]; each peer's events (its spend loop, its
//!   leave timer) live on its home shard's queue;
//! * peers that join under churn are assigned to the smallest region at
//!   the instant their `Join` event applies — a deterministic rule, so
//!   the shard map evolves identically on every run;
//! * every settled purchase is classified shard-local or cross-shard.
//!   Cross-shard trades — a buyer whose chosen seller lives on another
//!   shard — are recorded in a tick-bucketed [`CrossShardLog`] keyed by
//!   `(tick, source shard, seq)` and settled into per-shard accounting
//!   ([`ShardStats`]) at each window barrier, where conservation is
//!   re-checked.
//!
//! ## Value now, accounting at the barrier
//!
//! The market draws from **one** global RNG stream, so byte-identity
//! with the serial goldens requires every ledger mutation to land in
//! the serial order. The credit *transfer* of a cross-shard trade is
//! therefore applied eagerly, inside the unchanged [`CreditMarket`]
//! hot path, at the trade's merged position; what is deferred to the
//! window barrier is the *inter-shard accounting* — the authoritative
//! log of which credits crossed which boundary, settled in a fixed
//! order and checked against the ledger. (A future per-shard-RNG mode
//! could defer the value transfer itself; with a global RNG that would
//! change the stream and break the goldens.) `docs/ARCHITECTURE.md`
//! § "Sharded execution" spells out the full argument.

use scrip_des::{CrossShardLog, Scheduler, ShardCtx, ShardModel, ShardedSimulation, SimTime};
use scrip_topology::{NodeId, Partition};

use scrip_des::Model;

use crate::error::CoreError;
use crate::market::{CreditMarket, MarketConfig, MarketEvent, TradeRecord};

/// Runs a queue-level market to `horizon` through the sharded kernel at
/// `config.shards` execution shards — the sharded counterpart of
/// [`crate::market::run_market`], and byte-identical to it for every
/// shard count. The tick window is the config's sample interval, so
/// every sampling boundary is also a shard barrier.
///
/// # Errors
/// Propagates [`CreditMarket::build`] failures (including the
/// streaming/sharding conflict rejected by `MarketConfig::validate`).
pub fn run_sharded_market(
    config: MarketConfig,
    seed: u64,
    horizon: SimTime,
) -> Result<CreditMarket, CoreError> {
    let shards = config.shards;
    let window = config.sample_interval;
    let market = CreditMarket::build(config, seed)?;
    let profile = market.queue_profile();
    let mut sim =
        ShardedSimulation::with_profile(ShardedMarket::new(market, shards), window, profile);
    sim.schedule(SimTime::ZERO, MarketEvent::Bootstrap);
    sim.run_until(horizon);
    Ok(sim.into_model().into_market())
}

/// Shard sentinel for peers not (yet) assigned to any region.
const ABSENT: u32 = u32::MAX;

/// Per-shard accounting, maintained by [`ShardedMarket`] and settled at
/// window barriers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Purchases whose buyer and seller both live on this shard.
    pub local_trades: u64,
    /// Cross-shard purchases bought *from* this shard (buyer here).
    pub outgoing_trades: u64,
    /// Cross-shard purchases sold *by* this shard (seller here).
    pub incoming_trades: u64,
    /// Credits sent to other shards by this shard's buyers.
    pub credits_out: u64,
    /// Credits received from other shards by this shard's sellers.
    pub credits_in: u64,
}

/// One cross-shard trade awaiting barrier settlement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct CrossShardTrade {
    /// The buyer's shard (also the log entry's source shard).
    from: u32,
    /// The seller's shard.
    to: u32,
    /// Credits transferred.
    price: u64,
}

/// A [`CreditMarket`] adapted to the sharded kernel; see the
/// [module docs](self).
#[derive(Clone, Debug)]
pub struct ShardedMarket {
    market: CreditMarket,
    /// Raw node ID → shard ([`ABSENT`] for departed / never-seen IDs).
    shard_of: Vec<u32>,
    /// Live-member count per shard (drives joiner placement).
    members: Vec<usize>,
    /// Cross-shard trades awaiting barrier settlement.
    log: CrossShardLog<CrossShardTrade>,
    stats: Vec<ShardStats>,
    /// Current tick-window index (advanced at each barrier).
    tick: u64,
    /// Edge cut of the initial partition (diagnostic).
    initial_edge_cut: usize,
    /// Reused buffer for draining the market's captured trades.
    trades: Vec<TradeRecord>,
    /// Purchases settled shard-locally (counted at apply time).
    settled_local: u64,
    /// Cross-shard purchases settled at barriers so far.
    settled_cross: u64,
}

impl ShardedMarket {
    /// Partitions `market`'s overlay into `shards` balanced regions and
    /// wraps it for the sharded kernel. Enables the market's trade
    /// capture so purchases can be classified at apply time.
    pub fn new(mut market: CreditMarket, shards: usize) -> Self {
        let partition = Partition::regions(market.graph(), shards.max(1));
        let k = partition.shard_count();
        let mut shard_of = vec![ABSENT; market.graph().next_raw_id() as usize];
        let mut members = vec![0usize; k];
        for (s, count) in members.iter_mut().enumerate() {
            for &id in partition.region(s) {
                shard_of[id.raw() as usize] = s as u32;
            }
            *count = partition.region(s).len();
        }
        market.enable_trade_capture();
        ShardedMarket {
            market,
            shard_of,
            members,
            log: CrossShardLog::new(),
            stats: vec![ShardStats::default(); k],
            tick: 0,
            initial_edge_cut: partition.edge_cut(),
            trades: Vec::new(),
            settled_local: 0,
            settled_cross: 0,
        }
    }

    /// The wrapped market.
    pub fn market(&self) -> &CreditMarket {
        &self.market
    }

    /// Consumes the wrapper, returning the market.
    pub fn into_market(self) -> CreditMarket {
        self.market
    }

    /// Per-shard accounting (settled through the last barrier).
    pub fn shard_stats(&self) -> &[ShardStats] {
        &self.stats
    }

    /// Edge cut of the initial partition (cross-shard overlay edges).
    pub fn initial_edge_cut(&self) -> usize {
        self.initial_edge_cut
    }

    /// Purchases settled shard-locally so far.
    pub fn settled_local(&self) -> u64 {
        self.settled_local
    }

    /// Cross-shard purchases settled at barriers so far.
    pub fn settled_cross(&self) -> u64 {
        self.settled_cross
    }

    /// Cross-shard trades recorded but not yet settled (non-zero only
    /// between a trade's application and the next barrier).
    pub fn unsettled(&self) -> usize {
        self.log.len()
    }

    /// The home shard of `id` (peers are placed at build / join time).
    fn shard_of(&self, id: NodeId) -> Option<usize> {
        match self.shard_of.get(id.raw() as usize) {
            Some(&s) if s != ABSENT => Some(s as usize),
            _ => None,
        }
    }

    /// Deterministic joiner placement: the smallest region, lowest
    /// index winning ties.
    fn smallest_shard(&self) -> usize {
        let mut best = 0;
        for (s, &count) in self.members.iter().enumerate() {
            if count < self.members[best] {
                best = s;
            }
        }
        best
    }

    /// Registers every peer the graph allocated in `[before, after)`
    /// (churn joiners) on the currently smallest shard.
    fn place_new_peers(&mut self, before: u64, after: u64) {
        for raw in before..after {
            let s = self.smallest_shard();
            if self.shard_of.len() <= raw as usize {
                self.shard_of.resize(raw as usize + 1, ABSENT);
            }
            self.shard_of[raw as usize] = s as u32;
            self.members[s] += 1;
        }
    }

    /// Clears a departed peer's shard assignment (no-op if it was
    /// already gone — `Leave` events for departed peers are ignored by
    /// the market too).
    fn forget_peer(&mut self, id: NodeId) {
        if let Some(entry) = self.shard_of.get_mut(id.raw() as usize) {
            if *entry != ABSENT {
                self.members[*entry as usize] -= 1;
                *entry = ABSENT;
            }
        }
    }

    /// Classifies the purchases captured while applying one event:
    /// shard-local trades are counted immediately; cross-shard trades
    /// go to the log for barrier settlement, keyed by the applying
    /// event's global `seq` (at most one purchase settles per event, so
    /// the `(tick, shard, seq)` key is unique).
    fn classify_trades(&mut self, ctx: ShardCtx) {
        let mut trades = std::mem::take(&mut self.trades);
        self.market.take_trades(&mut trades);
        for trade in &trades {
            let from = self
                .shard_of(trade.buyer)
                .expect("buyer was live when the trade settled");
            let to = self
                .shard_of(trade.seller)
                .expect("seller was live when the trade settled");
            if from == to {
                self.stats[from].local_trades += 1;
                self.settled_local += 1;
            } else {
                self.log.push(
                    self.tick,
                    from as u32,
                    ctx.seq,
                    CrossShardTrade {
                        from: from as u32,
                        to: to as u32,
                        price: trade.price,
                    },
                );
            }
        }
        self.trades = trades;
    }
}

impl ShardModel for ShardedMarket {
    type Event = MarketEvent;

    fn shard_count(&self) -> usize {
        self.members.len()
    }

    /// A peer's events live on its home shard; global events
    /// (bootstrap, sampling, churn arrivals) live on shard 0.
    /// Fault events follow the peer whose state they mutate: a
    /// delivery completes on the buyer's shard (the escrow and spend
    /// counters it touches live there), a crash on the victim's.
    fn route(&self, event: &MarketEvent) -> usize {
        match event {
            MarketEvent::Spend(id) | MarketEvent::Leave(id) | MarketEvent::Crash(id) => {
                self.shard_of(*id).unwrap_or(0)
            }
            MarketEvent::Deliver { buyer, .. } => self.shard_of(*buyer).unwrap_or(0),
            MarketEvent::Bootstrap | MarketEvent::Sample | MarketEvent::Join => 0,
        }
    }

    fn handle(
        &mut self,
        now: SimTime,
        event: MarketEvent,
        ctx: ShardCtx,
        scheduler: &mut Scheduler<MarketEvent>,
    ) {
        let leaver = match &event {
            MarketEvent::Leave(id) | MarketEvent::Crash(id) => Some(*id),
            _ => None,
        };
        let watermark = self.market.graph().next_raw_id();
        Model::handle(&mut self.market, now, event, scheduler);
        let after = self.market.graph().next_raw_id();
        if after > watermark {
            self.place_new_peers(watermark, after);
        }
        if let Some(id) = leaver {
            self.forget_peer(id);
        }
        self.classify_trades(ctx);
    }

    fn on_window_barrier(&mut self, _window_end: SimTime) {
        let stats = &mut self.stats;
        let mut settled = 0u64;
        self.log.settle_through(self.tick, |effect| {
            let trade = effect.payload;
            stats[trade.from as usize].outgoing_trades += 1;
            stats[trade.from as usize].credits_out += trade.price;
            stats[trade.to as usize].incoming_trades += 1;
            stats[trade.to as usize].credits_in += trade.price;
            settled += 1;
        });
        self.settled_cross += settled;
        self.tick += 1;
        // Always-on barrier invariants (promoted from debug asserts):
        // cross-shard accounting errors and conservation breaks must
        // fail loudly in release runs too, with enough payload to
        // localize the offending window.
        assert!(
            self.log.is_empty(),
            "barrier left trades unsettled (shards {}, tick {}, {} pending)",
            self.members.len(),
            self.tick,
            self.log.len()
        );
        assert_eq!(
            self.settled_local + self.settled_cross,
            self.market.purchases(),
            "every purchase must settle exactly once (shards {}, tick {}, delta {})",
            self.members.len(),
            self.tick,
            self.market.purchases() as i128 - (self.settled_local + self.settled_cross) as i128
        );
        assert!(
            self.market.ledger().conserved(),
            "barrier found the ledger out of conservation (shards {}, tick {}, \
             total {} + escrow {} != minted {} - burned {})",
            self.members.len(),
            self.tick,
            self.market.ledger().total(),
            self.market.ledger().escrow(),
            self.market.ledger().minted(),
            self.market.ledger().burned()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::{ChurnConfig, MarketConfig, TopologyKind};
    use scrip_des::{ShardedSimulation, SimDuration, SimTime};

    fn run_sharded(config: MarketConfig, seed: u64, shards: usize, secs: u64) -> ShardedMarket {
        let window = config.sample_interval;
        let market = CreditMarket::build(config, seed).expect("builds");
        let profile = market.queue_profile();
        let mut sim =
            ShardedSimulation::with_profile(ShardedMarket::new(market, shards), window, profile);
        sim.schedule(SimTime::ZERO, MarketEvent::Bootstrap);
        sim.run_until(SimTime::from_secs(secs));
        sim.into_model()
    }

    #[test]
    fn sharded_run_matches_serial_exactly() {
        let config = MarketConfig::new(50, 20)
            .topology(TopologyKind::Ring)
            .sample_interval(SimDuration::from_secs(100));
        let serial =
            crate::market::run_market(config.clone(), 5, SimTime::from_secs(800)).expect("runs");
        for shards in [1, 2, 4] {
            let sharded = run_sharded(config.clone(), 5, shards, 800);
            let m = sharded.market();
            assert_eq!(m.balances_sorted(), serial.balances_sorted());
            assert_eq!(m.gini_series(), serial.gini_series());
            assert_eq!(m.purchases(), serial.purchases());
            assert_eq!(m.denied(), serial.denied());
        }
    }

    #[test]
    fn sharded_faulty_run_matches_serial_exactly() {
        // The fault plan draws in event-apply order, which the sharded
        // kernel replays exactly — so injected faults, retries, and
        // crash schedules are byte-identical at every shard count.
        let spec = scrip_des::FaultSpec {
            drop_rate: 0.15,
            defect_rate: 0.05,
            delay_rate: 0.05,
            crash_fraction: 0.10,
            onset: SimTime::from_secs(50),
            ..scrip_des::FaultSpec::default()
        };
        let config = MarketConfig::new(50, 20)
            .topology(TopologyKind::Ring)
            .sample_interval(SimDuration::from_secs(100))
            .faults(spec);
        let serial =
            crate::market::run_market(config.clone(), 5, SimTime::from_secs(800)).expect("runs");
        for shards in [1, 2, 4] {
            let sharded = run_sharded(config.clone(), 5, shards, 800);
            let m = sharded.market();
            assert_eq!(m.balances_sorted(), serial.balances_sorted());
            assert_eq!(m.gini_series(), serial.gini_series());
            assert_eq!(m.purchases(), serial.purchases());
            assert_eq!(m.fault_stats(), serial.fault_stats());
            assert_eq!(m.in_flight_escrow(), serial.in_flight_escrow());
        }
    }

    #[test]
    fn every_purchase_settles_exactly_once() {
        let config = MarketConfig::new(40, 30)
            .topology(TopologyKind::Ring)
            .sample_interval(SimDuration::from_secs(50));
        let sharded = run_sharded(config, 9, 4, 600);
        let total: u64 = sharded
            .shard_stats()
            .iter()
            .map(|s| s.local_trades + s.outgoing_trades)
            .sum();
        assert_eq!(total, sharded.market().purchases());
        assert_eq!(sharded.unsettled(), 0, "horizon is a barrier");
        // Cross-shard credit flow is symmetric in aggregate.
        let credits_out: u64 = sharded.shard_stats().iter().map(|s| s.credits_out).sum();
        let credits_in: u64 = sharded.shard_stats().iter().map(|s| s.credits_in).sum();
        assert_eq!(credits_out, credits_in);
        // A ring split 4 ways definitely trades across boundaries.
        assert!(sharded.settled_cross() > 0);
        assert!(sharded.initial_edge_cut() > 0);
    }

    #[test]
    fn churn_joiners_get_deterministic_shards() {
        let churn = ChurnConfig::new(0.5, 120.0, 4).expect("valid");
        let config = MarketConfig::new(60, 10)
            .churn(churn)
            .topology(TopologyKind::Complete)
            .sample_interval(SimDuration::from_secs(100));
        let a = run_sharded(config.clone(), 11, 3, 1_000);
        let b = run_sharded(config, 11, 3, 1_000);
        assert_eq!(a.shard_of, b.shard_of);
        assert_eq!(a.shard_stats(), b.shard_stats());
        // Membership bookkeeping matches the live population.
        let members: usize = a.members.iter().sum();
        assert_eq!(members, a.market().peer_count());
    }
}

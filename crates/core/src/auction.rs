//! Auction-based chunk pricing — the paper's declared future work
//! (Sec. VII: "a detailed characterization of non-trivial pricing
//! mechanisms, e.g., pricing through auctions, is beyond the scope of
//! this first attempt … We plan to study it in future work").
//!
//! This module implements the natural mechanism for a pull-based chunk
//! market: a **reverse (procurement) second-price auction**. The buyer
//! solicits asks from every neighbor able to serve the chunk; the
//! cheapest seller wins but is paid the *second*-cheapest ask (Vickrey
//! pricing), which makes truthful asking a dominant strategy. With a
//! single candidate seller, the seller's own ask is paid (a posted
//! price).
//!
//! The market-level effect studied here: second-price competition
//! compresses the *dispersion* of realized prices relative to posted
//! per-seller prices, which weakens the price-heterogeneity channel of
//! wealth condensation (Sec. V-C). The `auction_vs_posted` comparison in
//! the `scrip-bench` ablations quantifies this.

use scrip_topology::NodeId;

use crate::pricing::PricingModel;

/// Outcome of one procurement auction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AuctionOutcome {
    /// The winning (cheapest-ask) seller.
    pub winner: NodeId,
    /// The price actually paid: the second-lowest ask (or the winner's
    /// ask when it is the only bidder).
    pub price: u64,
    /// The winner's own ask, for bookkeeping.
    pub winning_ask: u64,
}

/// Runs a reverse second-price auction for `chunk` among `sellers`,
/// with asks quoted by `pricing`. Ties are broken toward the
/// lowest-numbered seller (deterministic). Returns [`None`] if
/// `sellers` is empty.
pub fn second_price_auction(
    pricing: &PricingModel,
    sellers: &[NodeId],
    chunk: u64,
) -> Option<AuctionOutcome> {
    let mut best: Option<(u64, NodeId)> = None;
    let mut second: Option<u64> = None;
    for &s in sellers {
        let ask = pricing.price(s, chunk);
        match best {
            None => best = Some((ask, s)),
            Some((best_ask, best_seller)) => {
                if ask < best_ask || (ask == best_ask && s < best_seller) {
                    second = Some(best_ask);
                    best = Some((ask, s));
                } else {
                    second = Some(second.map_or(ask, |x| x.min(ask)));
                }
            }
        }
    }
    best.map(|(winning_ask, winner)| AuctionOutcome {
        winner,
        price: second.unwrap_or(winning_ask),
        winning_ask,
    })
}

/// Summary statistics of realized prices under a pricing mechanism,
/// used to compare auction vs posted pricing.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PriceStats {
    /// Number of trades sampled.
    pub trades: u64,
    /// Mean realized price.
    pub mean: f64,
    /// Population variance of realized prices.
    pub variance: f64,
}

impl PriceStats {
    /// Computes stats from a price sample.
    pub fn from_prices(prices: &[u64]) -> Self {
        if prices.is_empty() {
            return PriceStats::default();
        }
        let n = prices.len() as f64;
        let mean = prices.iter().sum::<u64>() as f64 / n;
        let variance = prices
            .iter()
            .map(|&p| (p as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        PriceStats {
            trades: prices.len() as u64,
            mean,
            variance,
        }
    }

    /// Coefficient of variation (σ/μ); 0 for an empty or zero-mean
    /// sample.
    pub fn cv(&self) -> f64 {
        if self.mean <= 0.0 {
            0.0
        } else {
            self.variance.sqrt() / self.mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::PricingConfig;
    use scrip_des::SimRng;

    fn ids(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId::from_raw).collect()
    }

    fn posted_model(peers: &[NodeId], seed: u64) -> PricingModel {
        let mut rng = SimRng::seed_from_u64(seed);
        PricingModel::realize(PricingConfig::SellerPoisson { mean: 3.0 }, peers, &mut rng)
            .expect("valid")
    }

    #[test]
    fn empty_auction_yields_none() {
        let peers = ids(3);
        let model = posted_model(&peers, 1);
        assert_eq!(second_price_auction(&model, &[], 0), None);
    }

    #[test]
    fn single_seller_pays_own_ask() {
        let peers = ids(3);
        let model = posted_model(&peers, 2);
        let outcome = second_price_auction(&model, &peers[..1], 0).expect("one seller");
        assert_eq!(outcome.winner, peers[0]);
        assert_eq!(outcome.price, model.price(peers[0], 0));
        assert_eq!(outcome.price, outcome.winning_ask);
    }

    #[test]
    fn winner_is_cheapest_but_pays_second_price() {
        let peers = ids(10);
        let model = posted_model(&peers, 3);
        let outcome = second_price_auction(&model, &peers, 7).expect("sellers");
        let mut asks: Vec<(u64, NodeId)> = peers.iter().map(|&s| (model.price(s, 7), s)).collect();
        asks.sort();
        assert_eq!(outcome.winner, asks[0].1);
        assert_eq!(outcome.winning_ask, asks[0].0);
        assert_eq!(outcome.price, asks[1].0, "pays the second-lowest ask");
        assert!(outcome.price >= outcome.winning_ask);
    }

    #[test]
    fn tie_breaks_to_lowest_id_deterministically() {
        let peers = ids(5);
        let mut rng = SimRng::seed_from_u64(4);
        let model = PricingModel::realize(PricingConfig::Uniform { price: 2 }, &peers, &mut rng)
            .expect("valid");
        let a = second_price_auction(&model, &peers, 0).expect("sellers");
        let b = second_price_auction(&model, &peers, 0).expect("sellers");
        assert_eq!(a, b);
        assert_eq!(a.winner, peers[0]);
        assert_eq!(a.price, 2);
    }

    #[test]
    fn auction_compresses_price_dispersion() {
        // With heterogeneous posted prices, competitive second-price
        // outcomes have a lower coefficient of variation than buying from
        // a random seller at its posted price.
        let peers = ids(40);
        let model = posted_model(&peers, 5);
        let mut rng = SimRng::seed_from_u64(6);
        let mut posted = Vec::new();
        let mut auctioned = Vec::new();
        for chunk in 0..2_000u64 {
            // Random subset of 5 candidate sellers.
            let mut candidates = peers.clone();
            rng.shuffle(&mut candidates);
            let candidates = &candidates[..5];
            posted.push(model.price(candidates[0], chunk));
            auctioned.push(
                second_price_auction(&model, candidates, chunk)
                    .expect("sellers")
                    .price,
            );
        }
        let posted_stats = PriceStats::from_prices(&posted);
        let auction_stats = PriceStats::from_prices(&auctioned);
        assert!(
            auction_stats.cv() < posted_stats.cv(),
            "auction CV {:.3} should be below posted CV {:.3}",
            auction_stats.cv(),
            posted_stats.cv()
        );
        // Competition also lowers the mean paid price.
        assert!(auction_stats.mean <= posted_stats.mean + 0.2);
    }

    #[test]
    fn price_stats_edge_cases() {
        assert_eq!(PriceStats::from_prices(&[]), PriceStats::default());
        let s = PriceStats::from_prices(&[2, 2, 2]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.cv(), 0.0);
        assert_eq!(s.trades, 3);
    }
}

//! The unified error type of the core crate.

use std::error::Error;
use std::fmt;

use scrip_econ::EconError;
use scrip_queueing::QueueingError;
use scrip_topology::generators::GenError;

/// Errors from market construction, simulation, and analysis.
#[derive(Clone, Debug, PartialEq)]
pub enum CoreError {
    /// A configuration parameter was invalid.
    Config(String),
    /// Topology generation failed.
    Topology(GenError),
    /// Queueing-network analysis failed.
    Queueing(QueueingError),
    /// An inequality metric failed.
    Econ(EconError),
    /// A ledger operation failed (e.g. overdraft).
    Ledger(String),
    /// A checkpoint snapshot could not be taken or restored
    /// (truncated/corrupt bytes, version or configuration mismatch,
    /// unsupported session shape).
    Checkpoint(String),
    /// An event trace could not be recorded, read, or verified
    /// (I/O failure, truncated/corrupt frames, header mismatch, or a
    /// replay that diverged from the recorded run).
    Trace(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Config(msg) => write!(f, "invalid market configuration: {msg}"),
            CoreError::Topology(e) => write!(f, "topology: {e}"),
            CoreError::Queueing(e) => write!(f, "queueing analysis: {e}"),
            CoreError::Econ(e) => write!(f, "inequality metric: {e}"),
            CoreError::Ledger(msg) => write!(f, "ledger: {msg}"),
            CoreError::Checkpoint(msg) => write!(f, "checkpoint: {msg}"),
            CoreError::Trace(msg) => write!(f, "trace: {msg}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Topology(e) => Some(e),
            CoreError::Queueing(e) => Some(e),
            CoreError::Econ(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GenError> for CoreError {
    fn from(e: GenError) -> Self {
        CoreError::Topology(e)
    }
}

impl From<QueueingError> for CoreError {
    fn from(e: QueueingError) -> Self {
        CoreError::Queueing(e)
    }
}

impl From<EconError> for CoreError {
    fn from(e: EconError) -> Self {
        CoreError::Econ(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: CoreError = GenError::InvalidParam("n".into()).into();
        assert!(e.to_string().contains("topology"));
        let e: CoreError = QueueingError::Dimension("d".into()).into();
        assert!(e.to_string().contains("queueing"));
        let e: CoreError = EconError::Empty.into();
        assert!(e.to_string().contains("inequality"));
        assert!(CoreError::Config("x".into()).to_string().contains("x"));
        assert!(CoreError::Ledger("y".into()).to_string().contains("y"));
    }
}

//! The credit ledger: integer wallets with conservation accounting.
//!
//! Credits in the paper are indivisible units (jobs in the queueing
//! model), so wallets are `u64` balances. The ledger tracks every unit
//! minted (initial endowments, joiner endowments) and burned (departing
//! peers taking their wallets), so the conservation invariant
//! `Σ balances + escrow = minted − burned` is checkable at any time —
//! the market simulators assert it in tests.

use std::collections::BTreeMap;

use scrip_topology::NodeId;

use crate::error::CoreError;

/// Integer credit wallets for a set of peers, with mint/burn accounting.
///
/// ```
/// use scrip_core::Ledger;
/// use scrip_topology::NodeId;
///
/// # fn main() -> Result<(), scrip_core::CoreError> {
/// let mut ledger = Ledger::new();
/// let a = NodeId::from_raw(0);
/// let b = NodeId::from_raw(1);
/// ledger.mint(a, 10);
/// ledger.mint(b, 10);
/// ledger.transfer(a, b, 3)?;
/// assert_eq!(ledger.balance(a), 7);
/// assert_eq!(ledger.balance(b), 13);
/// assert_eq!(ledger.total(), 20);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Ledger {
    balances: BTreeMap<NodeId, u64>,
    minted: u64,
    burned: u64,
    escrow: u64,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Creates an account (if absent) and mints `amount` fresh credits
    /// into it.
    pub fn mint(&mut self, peer: NodeId, amount: u64) {
        *self.balances.entry(peer).or_insert(0) += amount;
        self.minted += amount;
    }

    /// Removes a peer's account, burning its remaining balance (the
    /// departing peer "takes away its credits in possession").
    /// Returns the burned amount (0 if the account did not exist).
    pub fn burn_account(&mut self, peer: NodeId) -> u64 {
        let amount = self.balances.remove(&peer).unwrap_or(0);
        self.burned += amount;
        amount
    }

    /// The balance of `peer` (0 for unknown accounts).
    pub fn balance(&self, peer: NodeId) -> u64 {
        self.balances.get(&peer).copied().unwrap_or(0)
    }

    /// Whether the account exists.
    pub fn has_account(&self, peer: NodeId) -> bool {
        self.balances.contains_key(&peer)
    }

    /// Moves `amount` credits from `from` to `to`.
    ///
    /// # Errors
    /// Returns [`CoreError::Ledger`] if either account is missing or the
    /// sender's balance is insufficient. No partial transfer occurs.
    pub fn transfer(&mut self, from: NodeId, to: NodeId, amount: u64) -> Result<(), CoreError> {
        if !self.balances.contains_key(&to) {
            return Err(CoreError::Ledger(format!("unknown payee {to}")));
        }
        let src = self
            .balances
            .get_mut(&from)
            .ok_or_else(|| CoreError::Ledger(format!("unknown payer {from}")))?;
        if *src < amount {
            return Err(CoreError::Ledger(format!(
                "insufficient funds: {from} has {src}, needs {amount}"
            )));
        }
        *src -= amount;
        *self.balances.get_mut(&to).expect("checked above") += amount;
        Ok(())
    }

    /// Withholds `amount` from a peer's balance into the system escrow
    /// (taxation). Returns the amount actually withheld (capped by the
    /// balance).
    pub fn withhold_to_escrow(&mut self, peer: NodeId, amount: u64) -> u64 {
        let Some(balance) = self.balances.get_mut(&peer) else {
            return 0;
        };
        let take = amount.min(*balance);
        *balance -= take;
        self.escrow += take;
        take
    }

    /// Pays `amount` from the escrow to a peer. Returns the amount paid
    /// (capped by the escrow and zero for unknown accounts).
    pub fn pay_from_escrow(&mut self, peer: NodeId, amount: u64) -> u64 {
        let Some(balance) = self.balances.get_mut(&peer) else {
            return 0;
        };
        let pay = amount.min(self.escrow);
        self.escrow -= pay;
        *balance += pay;
        pay
    }

    /// Credits currently held in the system escrow.
    pub fn escrow(&self) -> u64 {
        self.escrow
    }

    /// Total credits in wallets (excluding escrow).
    pub fn total(&self) -> u64 {
        self.balances.values().sum()
    }

    /// Total credits ever minted.
    pub fn minted(&self) -> u64 {
        self.minted
    }

    /// Total credits burned by departures.
    pub fn burned(&self) -> u64 {
        self.burned
    }

    /// Number of accounts.
    pub fn accounts(&self) -> usize {
        self.balances.len()
    }

    /// Iterates `(peer, balance)` in ascending peer order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.balances.iter().map(|(&id, &b)| (id, b))
    }

    /// The balances as a vector in ascending peer order (for Gini etc.).
    pub fn balances_vec(&self) -> Vec<u64> {
        self.balances.values().copied().collect()
    }

    /// Checks the conservation invariant
    /// `Σ balances + escrow == minted − burned`.
    pub fn conserved(&self) -> bool {
        self.total() + self.escrow == self.minted - self.burned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> NodeId {
        NodeId::from_raw(n)
    }

    #[test]
    fn mint_and_balance() {
        let mut l = Ledger::new();
        l.mint(id(1), 5);
        l.mint(id(1), 3);
        assert_eq!(l.balance(id(1)), 8);
        assert_eq!(l.balance(id(9)), 0);
        assert_eq!(l.minted(), 8);
        assert!(l.conserved());
    }

    #[test]
    fn transfer_moves_credits() {
        let mut l = Ledger::new();
        l.mint(id(1), 10);
        l.mint(id(2), 0);
        l.transfer(id(1), id(2), 4).expect("sufficient");
        assert_eq!(l.balance(id(1)), 6);
        assert_eq!(l.balance(id(2)), 4);
        assert_eq!(l.total(), 10);
        assert!(l.conserved());
    }

    #[test]
    fn transfer_rejects_overdraft_and_unknowns() {
        let mut l = Ledger::new();
        l.mint(id(1), 2);
        l.mint(id(2), 0);
        assert!(l.transfer(id(1), id(2), 3).is_err());
        assert_eq!(l.balance(id(1)), 2, "no partial transfer");
        assert!(l.transfer(id(9), id(2), 1).is_err());
        assert!(l.transfer(id(1), id(9), 1).is_err());
    }

    #[test]
    fn burn_account_removes_and_counts() {
        let mut l = Ledger::new();
        l.mint(id(1), 7);
        assert_eq!(l.burn_account(id(1)), 7);
        assert!(!l.has_account(id(1)));
        assert_eq!(l.burned(), 7);
        assert_eq!(l.total(), 0);
        assert!(l.conserved());
        assert_eq!(l.burn_account(id(1)), 0, "double burn is a no-op");
    }

    #[test]
    fn escrow_roundtrip() {
        let mut l = Ledger::new();
        l.mint(id(1), 10);
        l.mint(id(2), 0);
        assert_eq!(l.withhold_to_escrow(id(1), 4), 4);
        assert_eq!(l.escrow(), 4);
        assert_eq!(l.balance(id(1)), 6);
        assert!(l.conserved());
        assert_eq!(l.pay_from_escrow(id(2), 3), 3);
        assert_eq!(l.balance(id(2)), 3);
        assert_eq!(l.escrow(), 1);
        assert!(l.conserved());
        // Capped by escrow.
        assert_eq!(l.pay_from_escrow(id(2), 100), 1);
        assert_eq!(l.escrow(), 0);
    }

    #[test]
    fn withhold_caps_at_balance() {
        let mut l = Ledger::new();
        l.mint(id(1), 3);
        assert_eq!(l.withhold_to_escrow(id(1), 10), 3);
        assert_eq!(l.balance(id(1)), 0);
        assert_eq!(l.withhold_to_escrow(id(9), 5), 0, "unknown account");
        assert!(l.conserved());
    }

    #[test]
    fn iteration_is_sorted() {
        let mut l = Ledger::new();
        l.mint(id(5), 1);
        l.mint(id(2), 2);
        l.mint(id(9), 3);
        let ids: Vec<u64> = l.iter().map(|(id, _)| id.raw()).collect();
        assert_eq!(ids, vec![2, 5, 9]);
        assert_eq!(l.balances_vec(), vec![2, 1, 3]);
        assert_eq!(l.accounts(), 3);
    }
}

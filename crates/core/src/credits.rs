//! The credit ledger: integer wallets with conservation accounting.
//!
//! Credits in the paper are indivisible units (jobs in the queueing
//! model), so wallets are `u64` balances. The ledger tracks every unit
//! minted (initial endowments, joiner endowments) and burned (departing
//! peers taking their wallets), so the conservation invariant
//! `Σ balances + escrow = minted − burned` is checkable at any time —
//! the market simulators assert it in tests.
//!
//! Wallets live in a dense [`PeerArena`]-indexed `Vec` (one array load
//! per balance access, no tree walk), the wallet total is a cached
//! running sum so [`Ledger::total`] and [`Ledger::conserved`] are O(1),
//! and an optional [`IncrementalGini`] accumulator is kept in sync by
//! every mutation so a wealth-Gini sample is O(1) too
//! ([`Ledger::enable_wealth_tracking`]).

use scrip_econ::IncrementalGini;
use scrip_topology::NodeId;

use crate::arena::PeerArena;
use crate::error::CoreError;

/// Integer credit wallets for a set of peers, with mint/burn accounting.
///
/// ```
/// use scrip_core::Ledger;
/// use scrip_topology::NodeId;
///
/// # fn main() -> Result<(), scrip_core::CoreError> {
/// let mut ledger = Ledger::new();
/// let a = NodeId::from_raw(0);
/// let b = NodeId::from_raw(1);
/// ledger.mint(a, 10);
/// ledger.mint(b, 10);
/// ledger.transfer(a, b, 3)?;
/// assert_eq!(ledger.balance(a), 7);
/// assert_eq!(ledger.balance(b), 13);
/// assert_eq!(ledger.total(), 20);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct Ledger {
    arena: PeerArena,
    /// Slot-indexed balances (parallel to `arena`).
    balances: Vec<u64>,
    /// Cached `Σ balances` (wallets only, excluding escrow).
    total: u64,
    minted: u64,
    burned: u64,
    escrow: u64,
    /// Online Gini accumulator, kept in sync by every balance mutation
    /// when enabled.
    tracker: Option<IncrementalGini>,
}

/// Equality is semantic: same accounts with the same balances and the
/// same accounting counters, independent of slot layout and of whether
/// wealth tracking is enabled.
impl PartialEq for Ledger {
    fn eq(&self, other: &Self) -> bool {
        self.minted == other.minted
            && self.burned == other.burned
            && self.escrow == other.escrow
            && self.accounts() == other.accounts()
            && self
                .arena
                .ids()
                .iter()
                .zip(&self.balances)
                .all(|(&id, &b)| other.arena.slot(id).map(|s| other.balances[s]) == Some(b))
    }
}

impl Eq for Ledger {}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Starts maintaining an [`IncrementalGini`] accumulator over the
    /// wallet balances, so [`Ledger::tracked_gini`] is O(1) per sample.
    /// Seeds the accumulator with the current balances and pre-sizes its
    /// wealth histogram for the current supply (the upper bound on any
    /// single wallet in a closed market), capped at 2¹⁶ values (1 MiB)
    /// so a huge supply does not preallocate a huge table. Whenever a
    /// wallet later exceeds the reserved range, the histogram doubles —
    /// a rare, amortized reallocation (at most log₂(max wealth) times
    /// per run). Idempotent.
    pub fn enable_wealth_tracking(&mut self) {
        if self.tracker.is_some() {
            return;
        }
        let mut tracker = IncrementalGini::new();
        tracker.reserve_values(self.total.min(1 << 16));
        for &b in &self.balances {
            tracker.insert(b);
        }
        self.tracker = Some(tracker);
    }

    /// The Gini index of the current balances from the online
    /// accumulator: [`None`] when tracking is disabled or no account
    /// exists. Bit-compatible with [`scrip_econ::gini_u64`] over
    /// [`Ledger::balances_vec`] (see [`scrip_econ::incremental`]).
    pub fn tracked_gini(&self) -> Option<f64> {
        self.tracker.as_ref().and_then(IncrementalGini::gini)
    }

    /// Applies a balance change to the cached total and the tracker.
    #[inline]
    fn on_change(&mut self, old: u64, new: u64) {
        self.total = self.total - old + new;
        if let Some(tracker) = &mut self.tracker {
            tracker.update(old, new);
        }
    }

    /// Creates an account (if absent) and mints `amount` fresh credits
    /// into it.
    ///
    /// Account storage is slot-indexed for densely allocated IDs (as
    /// handed out by [`scrip_topology::Graph::add_node`]): creating an
    /// account grows the reverse map to `peer.raw() + 1` entries (see
    /// [`crate::arena::PeerArena::insert`]). Reads on arbitrary IDs are
    /// always safe.
    pub fn mint(&mut self, peer: NodeId, amount: u64) {
        match self.arena.slot(peer) {
            Some(slot) => {
                let old = self.balances[slot];
                self.balances[slot] = old + amount;
                self.on_change(old, old + amount);
            }
            None => {
                self.arena.insert(peer);
                self.balances.push(amount);
                self.total += amount;
                if let Some(tracker) = &mut self.tracker {
                    tracker.insert(amount);
                }
            }
        }
        self.minted += amount;
    }

    /// Removes a peer's account, burning its remaining balance (the
    /// departing peer "takes away its credits in possession").
    /// Returns the burned amount (0 if the account did not exist).
    pub fn burn_account(&mut self, peer: NodeId) -> u64 {
        let Some(removal) = self.arena.remove(peer) else {
            return 0;
        };
        let amount = self.balances.swap_remove(removal.slot);
        self.total -= amount;
        self.burned += amount;
        if let Some(tracker) = &mut self.tracker {
            tracker.remove(amount);
        }
        amount
    }

    /// The balance of `peer` (0 for unknown accounts).
    #[inline]
    pub fn balance(&self, peer: NodeId) -> u64 {
        self.arena.slot(peer).map_or(0, |s| self.balances[s])
    }

    /// Whether the account exists.
    #[inline]
    pub fn has_account(&self, peer: NodeId) -> bool {
        self.arena.contains(peer)
    }

    /// Moves `amount` credits from `from` to `to`.
    ///
    /// # Errors
    /// Returns [`CoreError::Ledger`] if either account is missing or the
    /// sender's balance is insufficient. No partial transfer occurs.
    pub fn transfer(&mut self, from: NodeId, to: NodeId, amount: u64) -> Result<(), CoreError> {
        let Some(to_slot) = self.arena.slot(to) else {
            return Err(CoreError::Ledger(format!("unknown payee {to}")));
        };
        let Some(from_slot) = self.arena.slot(from) else {
            return Err(CoreError::Ledger(format!("unknown payer {from}")));
        };
        let src = self.balances[from_slot];
        if src < amount {
            return Err(CoreError::Ledger(format!(
                "insufficient funds: {from} has {src}, needs {amount}"
            )));
        }
        self.balances[from_slot] = src - amount;
        let dst = self.balances[to_slot];
        self.balances[to_slot] = dst + amount;
        // Wallet total is unchanged; only the tracker needs the moves.
        if let Some(tracker) = &mut self.tracker {
            tracker.update(src, src - amount);
            tracker.update(dst, dst + amount);
        }
        Ok(())
    }

    /// Withholds `amount` from a peer's balance into the system escrow
    /// (taxation). Returns the amount actually withheld (capped by the
    /// balance).
    pub fn withhold_to_escrow(&mut self, peer: NodeId, amount: u64) -> u64 {
        let Some(slot) = self.arena.slot(peer) else {
            return 0;
        };
        let old = self.balances[slot];
        let take = amount.min(old);
        self.balances[slot] = old - take;
        self.escrow += take;
        self.on_change(old, old - take);
        take
    }

    /// Pays `amount` from the escrow to a peer. Returns the amount paid
    /// (capped by the escrow and zero for unknown accounts).
    pub fn pay_from_escrow(&mut self, peer: NodeId, amount: u64) -> u64 {
        let Some(slot) = self.arena.slot(peer) else {
            return 0;
        };
        let pay = amount.min(self.escrow);
        self.escrow -= pay;
        let old = self.balances[slot];
        self.balances[slot] = old + pay;
        self.on_change(old, old + pay);
        pay
    }

    /// Pays up to `amount` from the escrow to *every* account (the
    /// taxation sweep "returns a unit to each peer") without any
    /// per-sweep allocation. Returns the total paid; stops early when
    /// the escrow runs dry.
    pub fn pay_each_from_escrow(&mut self, amount: u64) -> u64 {
        let mut paid = 0;
        for slot in 0..self.balances.len() {
            if self.escrow == 0 {
                break;
            }
            let pay = amount.min(self.escrow);
            self.escrow -= pay;
            let old = self.balances[slot];
            self.balances[slot] = old + pay;
            self.total += pay;
            if let Some(tracker) = &mut self.tracker {
                tracker.update(old, old + pay);
            }
            paid += pay;
        }
        paid
    }

    /// Credits currently held in the system escrow.
    pub fn escrow(&self) -> u64 {
        self.escrow
    }

    /// Total credits in wallets (excluding escrow). O(1): the sum is
    /// maintained incrementally.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Total credits ever minted.
    pub fn minted(&self) -> u64 {
        self.minted
    }

    /// Heap bytes reserved by per-wallet storage: the slot map plus the
    /// balance vector (capacities, the allocator's view). The optional
    /// wealth tracker is excluded — its Fenwick tree is sized by the
    /// maximum wealth value, not the wallet count; see
    /// [`Ledger::tracker_heap_bytes`].
    pub fn heap_bytes(&self) -> usize {
        self.arena.heap_bytes() + self.balances.capacity() * std::mem::size_of::<u64>()
    }

    /// Heap bytes reserved by the online Gini tracker's wealth
    /// histogram (0 when tracking is disabled).
    pub fn tracker_heap_bytes(&self) -> usize {
        self.tracker.as_ref().map_or(0, |t| t.heap_bytes())
    }

    /// Total credits burned by departures.
    pub fn burned(&self) -> u64 {
        self.burned
    }

    /// Number of accounts.
    pub fn accounts(&self) -> usize {
        self.arena.len()
    }

    /// Iterates `(peer, balance)` in ascending peer order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        let mut pairs: Vec<(NodeId, u64)> = self
            .arena
            .ids()
            .iter()
            .zip(&self.balances)
            .map(|(&id, &b)| (id, b))
            .collect();
        pairs.sort_unstable_by_key(|&(id, _)| id);
        pairs.into_iter()
    }

    /// The balances as a vector in ascending peer order (for Gini etc.).
    pub fn balances_vec(&self) -> Vec<u64> {
        self.iter().map(|(_, b)| b).collect()
    }

    /// `(peer, balance)` pairs in *slot* order — the dense internal
    /// layout, not ascending-ID order. Checkpoints capture this order so
    /// a restored ledger reproduces slot-sensitive trajectories (escrow
    /// sweeps, seller sampling) bit for bit.
    pub fn slot_entries(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.arena
            .ids()
            .iter()
            .zip(&self.balances)
            .map(|(&id, &b)| (id, b))
    }

    /// Rebuilds a ledger from checkpointed parts: `entries` must be in
    /// slot order (as produced by [`Ledger::slot_entries`]) so the dense
    /// layout — and everything whose iteration order depends on it —
    /// comes back identical. Wealth tracking starts disabled; call
    /// [`Ledger::enable_wealth_tracking`] afterwards if the original had
    /// it (the accumulator is a pure function of the balance multiset).
    pub fn restore(entries: &[(NodeId, u64)], escrow: u64, minted: u64, burned: u64) -> Self {
        let mut arena = PeerArena::new();
        let mut balances = Vec::with_capacity(entries.len());
        let mut total = 0u64;
        for &(id, b) in entries {
            arena.insert(id);
            balances.push(b);
            total += b;
        }
        Ledger {
            arena,
            balances,
            total,
            minted,
            burned,
            escrow,
            tracker: None,
        }
    }

    /// Checks the conservation invariant
    /// `Σ balances + escrow == minted − burned`. O(1).
    pub fn conserved(&self) -> bool {
        self.total + self.escrow == self.minted - self.burned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrip_econ::gini_u64;

    fn id(n: u64) -> NodeId {
        NodeId::from_raw(n)
    }

    #[test]
    fn mint_and_balance() {
        let mut l = Ledger::new();
        l.mint(id(1), 5);
        l.mint(id(1), 3);
        assert_eq!(l.balance(id(1)), 8);
        assert_eq!(l.balance(id(9)), 0);
        assert_eq!(l.minted(), 8);
        assert!(l.conserved());
    }

    #[test]
    fn transfer_moves_credits() {
        let mut l = Ledger::new();
        l.mint(id(1), 10);
        l.mint(id(2), 0);
        l.transfer(id(1), id(2), 4).expect("sufficient");
        assert_eq!(l.balance(id(1)), 6);
        assert_eq!(l.balance(id(2)), 4);
        assert_eq!(l.total(), 10);
        assert!(l.conserved());
    }

    #[test]
    fn transfer_rejects_overdraft_and_unknowns() {
        let mut l = Ledger::new();
        l.mint(id(1), 2);
        l.mint(id(2), 0);
        assert!(l.transfer(id(1), id(2), 3).is_err());
        assert_eq!(l.balance(id(1)), 2, "no partial transfer");
        assert!(l.transfer(id(9), id(2), 1).is_err());
        assert!(l.transfer(id(1), id(9), 1).is_err());
    }

    #[test]
    fn burn_account_removes_and_counts() {
        let mut l = Ledger::new();
        l.mint(id(1), 7);
        assert_eq!(l.burn_account(id(1)), 7);
        assert!(!l.has_account(id(1)));
        assert_eq!(l.burned(), 7);
        assert_eq!(l.total(), 0);
        assert!(l.conserved());
        assert_eq!(l.burn_account(id(1)), 0, "double burn is a no-op");
    }

    #[test]
    fn escrow_roundtrip() {
        let mut l = Ledger::new();
        l.mint(id(1), 10);
        l.mint(id(2), 0);
        assert_eq!(l.withhold_to_escrow(id(1), 4), 4);
        assert_eq!(l.escrow(), 4);
        assert_eq!(l.balance(id(1)), 6);
        assert!(l.conserved());
        assert_eq!(l.pay_from_escrow(id(2), 3), 3);
        assert_eq!(l.balance(id(2)), 3);
        assert_eq!(l.escrow(), 1);
        assert!(l.conserved());
        // Capped by escrow.
        assert_eq!(l.pay_from_escrow(id(2), 100), 1);
        assert_eq!(l.escrow(), 0);
    }

    #[test]
    fn withhold_caps_at_balance() {
        let mut l = Ledger::new();
        l.mint(id(1), 3);
        assert_eq!(l.withhold_to_escrow(id(1), 10), 3);
        assert_eq!(l.balance(id(1)), 0);
        assert_eq!(l.withhold_to_escrow(id(9), 5), 0, "unknown account");
        assert!(l.conserved());
    }

    #[test]
    fn iteration_is_sorted() {
        let mut l = Ledger::new();
        l.mint(id(5), 1);
        l.mint(id(2), 2);
        l.mint(id(9), 3);
        let ids: Vec<u64> = l.iter().map(|(id, _)| id.raw()).collect();
        assert_eq!(ids, vec![2, 5, 9]);
        assert_eq!(l.balances_vec(), vec![2, 1, 3]);
        assert_eq!(l.accounts(), 3);
    }

    #[test]
    fn pay_each_from_escrow_sweeps_all_accounts() {
        let mut l = Ledger::new();
        for i in 0..4 {
            l.mint(id(i), 10);
        }
        l.withhold_to_escrow(id(0), 6);
        assert_eq!(l.pay_each_from_escrow(1), 4);
        assert_eq!(l.escrow(), 2);
        assert!(l.conserved());
        // Escrow runs dry mid-sweep: pays what it can, never goes
        // negative.
        assert_eq!(l.pay_each_from_escrow(1), 2);
        assert_eq!(l.escrow(), 0);
        assert_eq!(l.pay_each_from_escrow(1), 0);
        assert!(l.conserved());
        assert_eq!(l.total(), 40);
    }

    #[test]
    fn restore_round_trips_slot_layout() {
        let mut l = Ledger::new();
        for i in 0..5 {
            l.mint(id(i), 10 * (i + 1));
        }
        l.burn_account(id(1)); // perturb slot order via swap-remove
        l.withhold_to_escrow(id(0), 3);
        let entries: Vec<(NodeId, u64)> = l.slot_entries().collect();
        let r = Ledger::restore(&entries, l.escrow(), l.minted(), l.burned());
        assert_eq!(r, l);
        assert!(r.conserved());
        // Slot layout (not just semantic content) must round-trip.
        let again: Vec<(NodeId, u64)> = r.slot_entries().collect();
        assert_eq!(again, entries);
    }

    #[test]
    fn equality_is_slot_layout_independent() {
        let mut a = Ledger::new();
        a.mint(id(0), 5);
        a.mint(id(1), 7);
        a.mint(id(2), 9);

        let mut b = Ledger::new();
        b.mint(id(2), 9);
        b.mint(id(0), 5);
        b.mint(id(1), 7);
        b.enable_wealth_tracking();
        assert_eq!(a, b, "layout and tracking must not affect equality");
        b.mint(id(1), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn tracked_gini_follows_mutations() {
        let mut l = Ledger::new();
        assert_eq!(l.tracked_gini(), None, "tracking disabled");
        for i in 0..5 {
            l.mint(id(i), 10);
        }
        l.enable_wealth_tracking();
        l.enable_wealth_tracking(); // idempotent
        assert_eq!(l.tracked_gini(), Some(0.0));
        l.transfer(id(0), id(1), 10).expect("funded");
        l.mint(id(5), 3);
        l.withhold_to_escrow(id(1), 4);
        l.pay_from_escrow(id(2), 2);
        l.pay_each_from_escrow(1);
        l.burn_account(id(3));
        let reference = gini_u64(&l.balances_vec()).expect("non-empty");
        assert_eq!(l.tracked_gini(), Some(reference), "bit-exact vs oracle");
        // Total stays consistent through all of the above.
        assert!(l.conserved());
    }
}

//! The built-in probes: one per metric of the paper's evaluation, plus
//! the observables related work measures (per-peer throughput and
//! availability curves — Ramaswamy et al., Potgieter).
//!
//! Every probe works at both market granularities through
//! [`MarketView`]; the scenario engine re-exports them through its
//! metric registry so they are selectable from scenario files by name.

use scrip_des::stats::TimeSeries;
use scrip_des::SimTime;
use scrip_econ::LorenzCurve;

use super::{ids, MarketView, MetricValue, Probe, Recorder};
use crate::error::CoreError;
use crate::snapshot::{Reader, Writer};

/// Converts an internal [`TimeSeries`] to `(secs, value)` points.
fn to_points(series: &TimeSeries) -> Vec<(f64, f64)> {
    series
        .samples()
        .iter()
        .map(|&(t, v)| (t.as_secs_f64(), v))
        .collect()
}

/// Encodes accumulated `(x, y)` points as a probe-state block.
fn encode_points(w: &mut Writer, points: &[(f64, f64)]) {
    w.put_u64(points.len() as u64);
    for &(x, y) in points {
        w.put_f64(x);
        w.put_f64(y);
    }
}

/// Decodes a block written by [`encode_points`].
fn decode_points(r: &mut Reader<'_>) -> Result<Vec<(f64, f64)>, CoreError> {
    let len = r.take_u64()?;
    let mut points = Vec::with_capacity(len as usize);
    for _ in 0..len {
        let x = r.take_f64()?;
        let y = r.take_f64()?;
        points.push((x, y));
    }
    Ok(points)
}

/// Records the `(t, Gini)` trajectory under [`ids::GINI_SERIES`] — the
/// paper's Figs. 7–11. Reads the simulator's internally sampled series
/// at the horizon, so it costs nothing during the run.
#[derive(Clone, Copy, Debug, Default)]
pub struct GiniSeriesProbe;

impl Probe for GiniSeriesProbe {
    fn at_horizon(&mut self, _now: SimTime, view: &dyn MarketView, rec: &mut Recorder) {
        rec.record(
            ids::GINI_SERIES,
            MetricValue::Series(to_points(view.gini_series())),
        );
    }
}

/// Records the final wealth distribution, sorted ascending, under
/// [`ids::FINAL_BALANCES`] (the y-values of the paper's Figs. 5–6).
#[derive(Clone, Copy, Debug, Default)]
pub struct FinalBalancesProbe;

impl Probe for FinalBalancesProbe {
    fn at_horizon(&mut self, _now: SimTime, view: &dyn MarketView, rec: &mut Recorder) {
        rec.record(
            ids::FINAL_BALANCES,
            MetricValue::SortedU64(view.balances_sorted()),
        );
    }
}

/// Records the sorted per-peer credit spending rates under
/// [`ids::SPENDING_RATES`] (the paper's Fig. 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct SpendingRatesProbe;

impl Probe for SpendingRatesProbe {
    fn at_horizon(&mut self, now: SimTime, view: &dyn MarketView, rec: &mut Recorder) {
        rec.record(
            ids::SPENDING_RATES,
            MetricValue::SortedF64(view.spending_rates_sorted(now)),
        );
    }
}

/// Records sorted wealth snapshots at the requested times under
/// [`ids::SNAPSHOTS`]. The times become extra session stops, so they
/// need not align with the sampling grid.
#[derive(Clone, Debug, Default)]
pub struct SnapshotsProbe {
    times: Vec<u64>,
    taken: Vec<(u64, Vec<u64>)>,
}

impl SnapshotsProbe {
    /// A probe snapshotting at the given times (seconds, ascending).
    pub fn new(times: Vec<u64>) -> Self {
        SnapshotsProbe {
            times,
            taken: Vec::new(),
        }
    }
}

impl Probe for SnapshotsProbe {
    fn extra_stops(&self) -> Vec<SimTime> {
        self.times.iter().map(|&t| SimTime::from_secs(t)).collect()
    }

    fn on_sample(&mut self, now: SimTime, view: &dyn MarketView) {
        let Some(&next) = self.times.get(self.taken.len()) else {
            return;
        };
        if now == SimTime::from_secs(next) {
            self.taken.push((next, view.balances_sorted()));
        }
    }

    fn at_horizon(&mut self, _now: SimTime, _view: &dyn MarketView, rec: &mut Recorder) {
        rec.record(
            ids::SNAPSHOTS,
            MetricValue::Snapshots(std::mem::take(&mut self.taken)),
        );
    }

    fn snapshot_state(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.put_u64(self.taken.len() as u64);
        for (t, balances) in &self.taken {
            w.put_u64(*t);
            w.put_u64(balances.len() as u64);
            for &b in balances {
                w.put_u64(b);
            }
        }
        w.into_bytes()
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), CoreError> {
        let mut r = Reader::new(state);
        let len = r.take_u64()?;
        let mut taken = Vec::with_capacity(len as usize);
        for _ in 0..len {
            let t = r.take_u64()?;
            let n = r.take_u64()?;
            let mut balances = Vec::with_capacity(n as usize);
            for _ in 0..n {
                balances.push(r.take_u64()?);
            }
            taken.push((t, balances));
        }
        r.finish()?;
        self.taken = taken;
        Ok(())
    }
}

/// Records the `(t, stall rate)` trajectory under [`ids::STALL_SERIES`]
/// — empty for queue-level markets, which have no playback to stall.
#[derive(Clone, Copy, Debug, Default)]
pub struct StallSeriesProbe;

impl Probe for StallSeriesProbe {
    fn at_horizon(&mut self, _now: SimTime, view: &dyn MarketView, rec: &mut Recorder) {
        let points = view.stall_series().map(to_points).unwrap_or_default();
        rec.record(ids::STALL_SERIES, MetricValue::Series(points));
    }
}

/// Records system throughput over time — `(t, purchases/sec since the
/// previous boundary)` — under [`ids::THROUGHPUT_SERIES`]. Built
/// entirely on the batched [`Probe::on_settle`] deltas, so it observes
/// purchase flow with zero hot-path cost.
#[derive(Clone, Debug, Default)]
pub struct ThroughputSeriesProbe {
    points: Vec<(f64, f64)>,
    last_t: f64,
}

impl ThroughputSeriesProbe {
    /// A fresh throughput probe.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Probe for ThroughputSeriesProbe {
    fn on_settle(&mut self, now: SimTime, settled: u64, _denied: u64) {
        let t = now.as_secs_f64();
        let dt = t - self.last_t;
        if dt > 0.0 {
            self.points.push((t, settled as f64 / dt));
            self.last_t = t;
        }
    }

    fn at_horizon(&mut self, _now: SimTime, _view: &dyn MarketView, rec: &mut Recorder) {
        rec.record(
            ids::THROUGHPUT_SERIES,
            MetricValue::Series(std::mem::take(&mut self.points)),
        );
    }

    fn snapshot_state(&self) -> Vec<u8> {
        let mut w = Writer::default();
        encode_points(&mut w, &self.points);
        w.put_f64(self.last_t);
        w.into_bytes()
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), CoreError> {
        let mut r = Reader::new(state);
        self.points = decode_points(&mut r)?;
        self.last_t = r.take_f64()?;
        r.finish()
    }
}

/// Records the live-peer population over time — `(t, peers)` — under
/// [`ids::POPULATION_SERIES`]: flat without churn, the
/// arrival/departure balance under it (paper Sec. VI-E).
#[derive(Clone, Debug, Default)]
pub struct PopulationSeriesProbe {
    points: Vec<(f64, f64)>,
}

impl PopulationSeriesProbe {
    /// A fresh population probe.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Probe for PopulationSeriesProbe {
    fn on_bootstrap(&mut self, view: &dyn MarketView) {
        self.points.push((0.0, view.peer_count() as f64));
    }

    fn on_sample(&mut self, now: SimTime, view: &dyn MarketView) {
        let t = now.as_secs_f64();
        // A time-zero extra stop (e.g. a snapshot at t = 0) fires right
        // after on_bootstrap already recorded the initial population;
        // keep one point per instant.
        if self.points.last().is_some_and(|&(last, _)| last == t) {
            return;
        }
        self.points.push((t, view.peer_count() as f64));
    }

    fn at_horizon(&mut self, _now: SimTime, _view: &dyn MarketView, rec: &mut Recorder) {
        rec.record(
            ids::POPULATION_SERIES,
            MetricValue::Series(std::mem::take(&mut self.points)),
        );
    }

    fn snapshot_state(&self) -> Vec<u8> {
        let mut w = Writer::default();
        encode_points(&mut w, &self.points);
        w.into_bytes()
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), CoreError> {
        let mut r = Reader::new(state);
        self.points = decode_points(&mut r)?;
        r.finish()
    }
}

/// Records the final wealth Lorenz curve under [`ids::LORENZ`], sampled
/// at `segments + 1` evenly spaced population shares (the paper's
/// Fig. 2, measured instead of analytic). Empty when no peers remain.
#[derive(Clone, Copy, Debug)]
pub struct LorenzProbe {
    segments: usize,
}

impl LorenzProbe {
    /// A probe sampling the curve over `segments` equal population
    /// slices (`segments + 1` points).
    ///
    /// # Panics
    /// Panics if `segments` is zero.
    pub fn new(segments: usize) -> Self {
        assert!(segments > 0, "need at least one segment");
        LorenzProbe { segments }
    }
}

impl Default for LorenzProbe {
    /// 100 segments — percentile resolution.
    fn default() -> Self {
        LorenzProbe::new(100)
    }
}

impl Probe for LorenzProbe {
    fn at_horizon(&mut self, _now: SimTime, view: &dyn MarketView, rec: &mut Recorder) {
        let balances = view.balances_sorted();
        let points = match LorenzCurve::from_samples_u64(&balances) {
            Ok(curve) => curve.sample(self.segments),
            Err(_) => Vec::new(), // no peers at the horizon
        };
        rec.record(ids::LORENZ, MetricValue::Series(points));
    }
}

/// Observes the fault-injection machinery: the `(t, cumulative failed
/// delivery attempts)` trajectory under [`ids::FAULT_SERIES`], the
/// `(t, credits in trade escrow)` trajectory under
/// [`ids::ESCROW_SERIES`], the seven fault counters
/// ([`ids::FAULT_DELIVERED`] … [`ids::FAULT_CRASHES`]), and the
/// retry-depth histogram under [`ids::RETRY_DEPTH`] at the horizon.
///
/// On a market without a fault plan both series stay empty and every
/// counter records zero, so the probe is safe to attach unconditionally.
#[derive(Clone, Debug, Default)]
pub struct FaultSeriesProbe {
    failures: Vec<(f64, f64)>,
    escrow: Vec<(f64, f64)>,
}

impl FaultSeriesProbe {
    /// A fresh fault probe.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Probe for FaultSeriesProbe {
    fn on_sample(&mut self, now: SimTime, view: &dyn MarketView) {
        let Some(stats) = view.fault_stats() else {
            return;
        };
        let t = now.as_secs_f64();
        self.failures.push((t, stats.failed_attempts() as f64));
        self.escrow.push((t, view.in_flight_escrow() as f64));
    }

    fn at_horizon(&mut self, _now: SimTime, view: &dyn MarketView, rec: &mut Recorder) {
        rec.record(
            ids::FAULT_SERIES,
            MetricValue::Series(std::mem::take(&mut self.failures)),
        );
        rec.record(
            ids::ESCROW_SERIES,
            MetricValue::Series(std::mem::take(&mut self.escrow)),
        );
        let default = Default::default();
        let stats = view.fault_stats().unwrap_or(&default);
        rec.record(ids::FAULT_DELIVERED, MetricValue::Counter(stats.delivered));
        rec.record(ids::FAULT_DROPPED, MetricValue::Counter(stats.dropped));
        rec.record(ids::FAULT_DEFECTED, MetricValue::Counter(stats.defected));
        rec.record(ids::FAULT_DELAYED, MetricValue::Counter(stats.delayed));
        rec.record(ids::FAULT_RETRIES, MetricValue::Counter(stats.retries));
        rec.record(ids::FAULT_REFUNDED, MetricValue::Counter(stats.refunded));
        rec.record(ids::FAULT_CRASHES, MetricValue::Counter(stats.crashes));
        let depth = stats
            .retry_depth
            .iter()
            .enumerate()
            .map(|(i, &n)| ((i + 1) as f64, n as f64))
            .collect();
        rec.record(ids::RETRY_DEPTH, MetricValue::Series(depth));
    }

    fn snapshot_state(&self) -> Vec<u8> {
        let mut w = Writer::default();
        encode_points(&mut w, &self.failures);
        encode_points(&mut w, &self.escrow);
        w.into_bytes()
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), CoreError> {
        let mut r = Reader::new(state);
        self.failures = decode_points(&mut r)?;
        self.escrow = decode_points(&mut r)?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::{ChurnConfig, MarketConfig};
    use crate::obs::Session;
    use scrip_des::SimDuration;

    fn observed_record(
        config: &MarketConfig,
        seed: u64,
        horizon_secs: u64,
    ) -> super::super::RunRecord {
        let mut session = Session::from_config(config, seed).expect("builds");
        session.attach(Box::new(GiniSeriesProbe));
        session.attach(Box::new(FinalBalancesProbe));
        session.attach(Box::new(SpendingRatesProbe));
        session.attach(Box::new(SnapshotsProbe::new(vec![
            horizon_secs / 2,
            horizon_secs,
        ])));
        session.attach(Box::new(StallSeriesProbe));
        session.attach(Box::new(ThroughputSeriesProbe::new()));
        session.attach(Box::new(PopulationSeriesProbe::new()));
        session.attach(Box::new(LorenzProbe::default()));
        session.run_until(SimTime::from_secs(horizon_secs));
        session.finish().0
    }

    #[test]
    fn all_probes_record_on_a_queue_market() {
        let config = MarketConfig::new(40, 20).sample_interval(SimDuration::from_secs(50));
        let record = observed_record(&config, 3, 500);
        assert_eq!(record.series(ids::GINI_SERIES).len(), 10);
        assert_eq!(record.sorted_u64(ids::FINAL_BALANCES).len(), 40);
        assert_eq!(record.sorted_f64(ids::SPENDING_RATES).len(), 40);
        let snaps = record.snapshots(ids::SNAPSHOTS);
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].0, 250);
        assert_eq!(snaps[0].1.len(), 40);
        assert!(record.series(ids::STALL_SERIES).is_empty(), "queue level");
        // Throughput: one point per boundary — 10 grid ticks; both
        // snapshot stops (250, 500) coincide with ticks and dedupe.
        let throughput = record.series(ids::THROUGHPUT_SERIES);
        assert_eq!(throughput.len(), 10);
        assert!(throughput.iter().all(|&(_, r)| r >= 0.0));
        // Total purchase flow re-integrates to the purchase counter.
        let mut last = 0.0;
        let mut total = 0.0;
        for &(t, rate) in throughput {
            total += rate * (t - last);
            last = t;
        }
        assert!((total - record.counter(ids::PURCHASES) as f64).abs() < 1e-6);
        let population = record.series(ids::POPULATION_SERIES);
        assert_eq!(population.first(), Some(&(0.0, 40.0)));
        assert!(population.iter().all(|&(_, n)| n == 40.0), "no churn");
        let lorenz = record.series(ids::LORENZ);
        assert_eq!(lorenz.len(), 101);
        assert_eq!(lorenz.first(), Some(&(0.0, 0.0)));
        assert_eq!(lorenz.last(), Some(&(1.0, 1.0)));
        // Lorenz is below the equality line.
        assert!(lorenz.iter().all(|&(p, share)| share <= p + 1e-9));
    }

    #[test]
    fn population_probe_tracks_churn() {
        let config = MarketConfig::new(50, 10)
            .churn(ChurnConfig::new(0.5, 100.0, 8).expect("valid"))
            .sample_interval(SimDuration::from_secs(100));
        let record = observed_record(&config, 11, 2_000);
        let population = record.series(ids::POPULATION_SERIES);
        assert_eq!(
            population.len(),
            21,
            "bootstrap point + 20 grid ticks (snapshots coincide with ticks)"
        );
        assert!(
            population.iter().any(|&(_, n)| n != 50.0),
            "churn never moved the population"
        );
        assert_eq!(
            population.last().map(|&(_, n)| n as u64),
            Some(record.counter(ids::PEER_COUNT))
        );
    }

    #[test]
    fn time_zero_snapshot_does_not_duplicate_population_point() {
        let config = MarketConfig::new(20, 10).sample_interval(SimDuration::from_secs(50));
        let mut session = Session::from_config(&config, 5).expect("builds");
        session.attach(Box::new(SnapshotsProbe::new(vec![0, 100])));
        session.attach(Box::new(PopulationSeriesProbe::new()));
        session.run_until(SimTime::from_secs(200));
        let (record, _) = session.finish();
        let snaps = record.snapshots(ids::SNAPSHOTS);
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].0, 0, "t=0 snapshot recorded");
        let population = record.series(ids::POPULATION_SERIES);
        // Bootstrap point + 4 grid ticks — the t=0 extra stop must not
        // add a second (0, n) point.
        assert_eq!(population.len(), 5, "{population:?}");
        assert_eq!(population[0], (0.0, 20.0));
        assert!(population.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn probes_work_on_chunk_level_markets() {
        use scrip_streaming::StreamingConfig;
        let config = MarketConfig::new(30, 40)
            .streaming_market(StreamingConfig::market_paced(1.0))
            .sample_interval(SimDuration::from_secs(25));
        let record = observed_record(&config, 17, 200);
        assert!(!record.series(ids::GINI_SERIES).is_empty());
        assert!(!record.series(ids::STALL_SERIES).is_empty(), "chunk level");
        assert!(!record.series(ids::THROUGHPUT_SERIES).is_empty());
        assert_eq!(record.series(ids::LORENZ).len(), 101);
        assert_eq!(record.sorted_u64(ids::FINAL_BALANCES).len(), 30);
    }
}

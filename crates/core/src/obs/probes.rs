//! The built-in probes: one per metric of the paper's evaluation, plus
//! the observables related work measures (per-peer throughput and
//! availability curves — Ramaswamy et al., Potgieter).
//!
//! Every probe works at both market granularities through
//! [`MarketView`]; the scenario engine re-exports them through its
//! metric registry so they are selectable from scenario files by name.

use scrip_des::stats::TimeSeries;
use scrip_des::SimTime;
use scrip_econ::LorenzCurve;

use super::{ids, MarketView, MetricValue, Probe, Recorder};

/// Converts an internal [`TimeSeries`] to `(secs, value)` points.
fn to_points(series: &TimeSeries) -> Vec<(f64, f64)> {
    series
        .samples()
        .iter()
        .map(|&(t, v)| (t.as_secs_f64(), v))
        .collect()
}

/// Records the `(t, Gini)` trajectory under [`ids::GINI_SERIES`] — the
/// paper's Figs. 7–11. Reads the simulator's internally sampled series
/// at the horizon, so it costs nothing during the run.
#[derive(Clone, Copy, Debug, Default)]
pub struct GiniSeriesProbe;

impl Probe for GiniSeriesProbe {
    fn at_horizon(&mut self, _now: SimTime, view: &dyn MarketView, rec: &mut Recorder) {
        rec.record(
            ids::GINI_SERIES,
            MetricValue::Series(to_points(view.gini_series())),
        );
    }
}

/// Records the final wealth distribution, sorted ascending, under
/// [`ids::FINAL_BALANCES`] (the y-values of the paper's Figs. 5–6).
#[derive(Clone, Copy, Debug, Default)]
pub struct FinalBalancesProbe;

impl Probe for FinalBalancesProbe {
    fn at_horizon(&mut self, _now: SimTime, view: &dyn MarketView, rec: &mut Recorder) {
        rec.record(
            ids::FINAL_BALANCES,
            MetricValue::SortedU64(view.balances_sorted()),
        );
    }
}

/// Records the sorted per-peer credit spending rates under
/// [`ids::SPENDING_RATES`] (the paper's Fig. 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct SpendingRatesProbe;

impl Probe for SpendingRatesProbe {
    fn at_horizon(&mut self, now: SimTime, view: &dyn MarketView, rec: &mut Recorder) {
        rec.record(
            ids::SPENDING_RATES,
            MetricValue::SortedF64(view.spending_rates_sorted(now)),
        );
    }
}

/// Records sorted wealth snapshots at the requested times under
/// [`ids::SNAPSHOTS`]. The times become extra session stops, so they
/// need not align with the sampling grid.
#[derive(Clone, Debug, Default)]
pub struct SnapshotsProbe {
    times: Vec<u64>,
    taken: Vec<(u64, Vec<u64>)>,
}

impl SnapshotsProbe {
    /// A probe snapshotting at the given times (seconds, ascending).
    pub fn new(times: Vec<u64>) -> Self {
        SnapshotsProbe {
            times,
            taken: Vec::new(),
        }
    }
}

impl Probe for SnapshotsProbe {
    fn extra_stops(&self) -> Vec<SimTime> {
        self.times.iter().map(|&t| SimTime::from_secs(t)).collect()
    }

    fn on_sample(&mut self, now: SimTime, view: &dyn MarketView) {
        let Some(&next) = self.times.get(self.taken.len()) else {
            return;
        };
        if now == SimTime::from_secs(next) {
            self.taken.push((next, view.balances_sorted()));
        }
    }

    fn at_horizon(&mut self, _now: SimTime, _view: &dyn MarketView, rec: &mut Recorder) {
        rec.record(
            ids::SNAPSHOTS,
            MetricValue::Snapshots(std::mem::take(&mut self.taken)),
        );
    }
}

/// Records the `(t, stall rate)` trajectory under [`ids::STALL_SERIES`]
/// — empty for queue-level markets, which have no playback to stall.
#[derive(Clone, Copy, Debug, Default)]
pub struct StallSeriesProbe;

impl Probe for StallSeriesProbe {
    fn at_horizon(&mut self, _now: SimTime, view: &dyn MarketView, rec: &mut Recorder) {
        let points = view.stall_series().map(to_points).unwrap_or_default();
        rec.record(ids::STALL_SERIES, MetricValue::Series(points));
    }
}

/// Records system throughput over time — `(t, purchases/sec since the
/// previous boundary)` — under [`ids::THROUGHPUT_SERIES`]. Built
/// entirely on the batched [`Probe::on_settle`] deltas, so it observes
/// purchase flow with zero hot-path cost.
#[derive(Clone, Debug, Default)]
pub struct ThroughputSeriesProbe {
    points: Vec<(f64, f64)>,
    last_t: f64,
}

impl ThroughputSeriesProbe {
    /// A fresh throughput probe.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Probe for ThroughputSeriesProbe {
    fn on_settle(&mut self, now: SimTime, settled: u64, _denied: u64) {
        let t = now.as_secs_f64();
        let dt = t - self.last_t;
        if dt > 0.0 {
            self.points.push((t, settled as f64 / dt));
            self.last_t = t;
        }
    }

    fn at_horizon(&mut self, _now: SimTime, _view: &dyn MarketView, rec: &mut Recorder) {
        rec.record(
            ids::THROUGHPUT_SERIES,
            MetricValue::Series(std::mem::take(&mut self.points)),
        );
    }
}

/// Records the live-peer population over time — `(t, peers)` — under
/// [`ids::POPULATION_SERIES`]: flat without churn, the
/// arrival/departure balance under it (paper Sec. VI-E).
#[derive(Clone, Debug, Default)]
pub struct PopulationSeriesProbe {
    points: Vec<(f64, f64)>,
}

impl PopulationSeriesProbe {
    /// A fresh population probe.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Probe for PopulationSeriesProbe {
    fn on_bootstrap(&mut self, view: &dyn MarketView) {
        self.points.push((0.0, view.peer_count() as f64));
    }

    fn on_sample(&mut self, now: SimTime, view: &dyn MarketView) {
        let t = now.as_secs_f64();
        // A time-zero extra stop (e.g. a snapshot at t = 0) fires right
        // after on_bootstrap already recorded the initial population;
        // keep one point per instant.
        if self.points.last().is_some_and(|&(last, _)| last == t) {
            return;
        }
        self.points.push((t, view.peer_count() as f64));
    }

    fn at_horizon(&mut self, _now: SimTime, _view: &dyn MarketView, rec: &mut Recorder) {
        rec.record(
            ids::POPULATION_SERIES,
            MetricValue::Series(std::mem::take(&mut self.points)),
        );
    }
}

/// Records the final wealth Lorenz curve under [`ids::LORENZ`], sampled
/// at `segments + 1` evenly spaced population shares (the paper's
/// Fig. 2, measured instead of analytic). Empty when no peers remain.
#[derive(Clone, Copy, Debug)]
pub struct LorenzProbe {
    segments: usize,
}

impl LorenzProbe {
    /// A probe sampling the curve over `segments` equal population
    /// slices (`segments + 1` points).
    ///
    /// # Panics
    /// Panics if `segments` is zero.
    pub fn new(segments: usize) -> Self {
        assert!(segments > 0, "need at least one segment");
        LorenzProbe { segments }
    }
}

impl Default for LorenzProbe {
    /// 100 segments — percentile resolution.
    fn default() -> Self {
        LorenzProbe::new(100)
    }
}

impl Probe for LorenzProbe {
    fn at_horizon(&mut self, _now: SimTime, view: &dyn MarketView, rec: &mut Recorder) {
        let balances = view.balances_sorted();
        let points = match LorenzCurve::from_samples_u64(&balances) {
            Ok(curve) => curve.sample(self.segments),
            Err(_) => Vec::new(), // no peers at the horizon
        };
        rec.record(ids::LORENZ, MetricValue::Series(points));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::{ChurnConfig, MarketConfig};
    use crate::obs::Session;
    use scrip_des::SimDuration;

    fn observed_record(
        config: &MarketConfig,
        seed: u64,
        horizon_secs: u64,
    ) -> super::super::RunRecord {
        let mut session = Session::from_config(config, seed).expect("builds");
        session.attach(Box::new(GiniSeriesProbe));
        session.attach(Box::new(FinalBalancesProbe));
        session.attach(Box::new(SpendingRatesProbe));
        session.attach(Box::new(SnapshotsProbe::new(vec![
            horizon_secs / 2,
            horizon_secs,
        ])));
        session.attach(Box::new(StallSeriesProbe));
        session.attach(Box::new(ThroughputSeriesProbe::new()));
        session.attach(Box::new(PopulationSeriesProbe::new()));
        session.attach(Box::new(LorenzProbe::default()));
        session.run_until(SimTime::from_secs(horizon_secs));
        session.finish().0
    }

    #[test]
    fn all_probes_record_on_a_queue_market() {
        let config = MarketConfig::new(40, 20).sample_interval(SimDuration::from_secs(50));
        let record = observed_record(&config, 3, 500);
        assert_eq!(record.series(ids::GINI_SERIES).len(), 10);
        assert_eq!(record.sorted_u64(ids::FINAL_BALANCES).len(), 40);
        assert_eq!(record.sorted_f64(ids::SPENDING_RATES).len(), 40);
        let snaps = record.snapshots(ids::SNAPSHOTS);
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].0, 250);
        assert_eq!(snaps[0].1.len(), 40);
        assert!(record.series(ids::STALL_SERIES).is_empty(), "queue level");
        // Throughput: one point per boundary — 10 grid ticks; both
        // snapshot stops (250, 500) coincide with ticks and dedupe.
        let throughput = record.series(ids::THROUGHPUT_SERIES);
        assert_eq!(throughput.len(), 10);
        assert!(throughput.iter().all(|&(_, r)| r >= 0.0));
        // Total purchase flow re-integrates to the purchase counter.
        let mut last = 0.0;
        let mut total = 0.0;
        for &(t, rate) in throughput {
            total += rate * (t - last);
            last = t;
        }
        assert!((total - record.counter(ids::PURCHASES) as f64).abs() < 1e-6);
        let population = record.series(ids::POPULATION_SERIES);
        assert_eq!(population.first(), Some(&(0.0, 40.0)));
        assert!(population.iter().all(|&(_, n)| n == 40.0), "no churn");
        let lorenz = record.series(ids::LORENZ);
        assert_eq!(lorenz.len(), 101);
        assert_eq!(lorenz.first(), Some(&(0.0, 0.0)));
        assert_eq!(lorenz.last(), Some(&(1.0, 1.0)));
        // Lorenz is below the equality line.
        assert!(lorenz.iter().all(|&(p, share)| share <= p + 1e-9));
    }

    #[test]
    fn population_probe_tracks_churn() {
        let config = MarketConfig::new(50, 10)
            .churn(ChurnConfig::new(0.5, 100.0, 8).expect("valid"))
            .sample_interval(SimDuration::from_secs(100));
        let record = observed_record(&config, 11, 2_000);
        let population = record.series(ids::POPULATION_SERIES);
        assert_eq!(
            population.len(),
            21,
            "bootstrap point + 20 grid ticks (snapshots coincide with ticks)"
        );
        assert!(
            population.iter().any(|&(_, n)| n != 50.0),
            "churn never moved the population"
        );
        assert_eq!(
            population.last().map(|&(_, n)| n as u64),
            Some(record.counter(ids::PEER_COUNT))
        );
    }

    #[test]
    fn time_zero_snapshot_does_not_duplicate_population_point() {
        let config = MarketConfig::new(20, 10).sample_interval(SimDuration::from_secs(50));
        let mut session = Session::from_config(&config, 5).expect("builds");
        session.attach(Box::new(SnapshotsProbe::new(vec![0, 100])));
        session.attach(Box::new(PopulationSeriesProbe::new()));
        session.run_until(SimTime::from_secs(200));
        let (record, _) = session.finish();
        let snaps = record.snapshots(ids::SNAPSHOTS);
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].0, 0, "t=0 snapshot recorded");
        let population = record.series(ids::POPULATION_SERIES);
        // Bootstrap point + 4 grid ticks — the t=0 extra stop must not
        // add a second (0, n) point.
        assert_eq!(population.len(), 5, "{population:?}");
        assert_eq!(population[0], (0.0, 20.0));
        assert!(population.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn probes_work_on_chunk_level_markets() {
        use scrip_streaming::StreamingConfig;
        let config = MarketConfig::new(30, 40)
            .streaming_market(StreamingConfig::market_paced(1.0))
            .sample_interval(SimDuration::from_secs(25));
        let record = observed_record(&config, 17, 200);
        assert!(!record.series(ids::GINI_SERIES).is_empty());
        assert!(!record.series(ids::STALL_SERIES).is_empty(), "chunk level");
        assert!(!record.series(ids::THROUGHPUT_SERIES).is_empty());
        assert_eq!(record.series(ids::LORENZ).len(), 101);
        assert_eq!(record.sorted_u64(ids::FINAL_BALANCES).len(), 30);
    }
}

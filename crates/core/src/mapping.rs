//! Market → queueing-network analysis: the paper's theory applied to a
//! concrete market instance.
//!
//! Given a market (overlay + spending rates + credit supply), this
//! module builds the transfer matrix, solves the equilibrium flow
//! (Lemma 1 / Eq. 1), computes normalized utilizations (Eq. 2), the
//! condensation threshold (Eq. 4, Theorems 2–3), and the exact
//! closed-Jackson wealth distribution (Eq. 3 via Buzen's algorithm) —
//! everything needed to *predict* what the simulators then confirm.

use std::collections::BTreeMap;

use scrip_econ::gini_from_pmf;
use scrip_queueing::closed::{normalized_utilizations, ClosedJackson};
use scrip_queueing::condensation::{classify, empirical_threshold, Regime, ThresholdEstimate};
use scrip_queueing::stationary::{stationary_flows, SolveMethod};
use scrip_streaming::StreamingSystem;
use scrip_streaming::TradePolicy;
use scrip_topology::{Graph, NodeId};

use crate::error::CoreError;
use crate::market::CreditMarket;
use crate::model::{uniform_routing, weighted_routing};

/// Tolerance for grouping peers into the maximal-utilization atom when
/// estimating the condensation threshold.
pub const ATOM_EPSILON: f64 = 1e-6;

/// The queueing-theoretic analysis of one market instance.
#[derive(Clone, Debug, PartialEq)]
pub struct MarketAnalysis {
    /// Peer ordering used by all vectors below.
    pub peers: Vec<NodeId>,
    /// Stationary income flows `λ` (normalized to sum 1).
    pub flows: Vec<f64>,
    /// Normalized utilizations `u_i` (paper Eq. 2).
    pub utilizations: Vec<f64>,
    /// Condensation-threshold estimate (paper Eq. 4).
    pub threshold: ThresholdEstimate,
    /// The regime verdict of Theorems 2–3 at this market's average
    /// wealth.
    pub regime: Regime,
    /// Average wealth `c = M/N`.
    pub average_wealth: f64,
    /// Exact expected wealth per peer at equilibrium (Buzen).
    pub expected_wealth: Vec<f64>,
}

impl MarketAnalysis {
    /// Analyzes a market described by its overlay, per-peer spending
    /// rates, routing weights (e.g. chunk availability), and total
    /// credits. Pass an empty weight map for uniform routing.
    ///
    /// # Errors
    /// Returns [`CoreError`] if the overlay is empty/reducible or rates
    /// are invalid.
    pub fn compute(
        graph: &Graph,
        service_rates: &BTreeMap<NodeId, f64>,
        routing_weights: &BTreeMap<NodeId, Vec<(NodeId, f64)>>,
        total_credits: u64,
    ) -> Result<Self, CoreError> {
        let (peers, matrix) = if routing_weights.is_empty() {
            uniform_routing(graph)?
        } else {
            weighted_routing(graph, routing_weights)?
        };
        Self::compute_with_matrix(peers, &matrix, service_rates, total_credits)
    }

    /// As [`MarketAnalysis::compute`] but with an explicit routing
    /// matrix (e.g. the complete-mixing matrix of the symmetric case).
    ///
    /// # Errors
    /// Returns [`CoreError`] if the matrix is reducible or rates are
    /// invalid.
    pub fn compute_with_matrix(
        peers: Vec<NodeId>,
        matrix: &scrip_queueing::TransferMatrix,
        service_rates: &BTreeMap<NodeId, f64>,
        total_credits: u64,
    ) -> Result<Self, CoreError> {
        let flows = stationary_flows(matrix, SolveMethod::Auto)?;
        let mu: Vec<f64> = peers
            .iter()
            .map(|id| service_rates.get(id).copied().unwrap_or(1.0))
            .collect();
        let utilizations = normalized_utilizations(&flows, &mu)?;
        let threshold = empirical_threshold(&utilizations, ATOM_EPSILON)?;
        let n = peers.len();
        let average_wealth = total_credits as f64 / n as f64;
        let regime = classify(average_wealth, &threshold.threshold);
        let network = ClosedJackson::new(&flows, &mu)?;
        let expected_wealth = network.expected_lengths(total_credits as usize);
        Ok(MarketAnalysis {
            peers,
            flows,
            utilizations,
            threshold,
            regime,
            average_wealth,
            expected_wealth,
        })
    }

    /// The Gini index of the *population wealth distribution* implied by
    /// the product-form equilibrium: the equally weighted mixture of all
    /// peers' exact marginal PMFs. This is the analytic counterpart of
    /// the simulated snapshot Gini.
    ///
    /// Cost is `O(N·M)`; fine for the paper's scales (`N ≤ 1000`,
    /// `M ≤ 10^5`).
    ///
    /// # Errors
    /// Returns [`CoreError::Econ`] if the mixture PMF is degenerate.
    pub fn population_gini(&self, total_credits: u64) -> Result<f64, CoreError> {
        let network = ClosedJackson::from_utilizations(&self.utilizations)?;
        let m = total_credits as usize;
        let gc = network.convolution(m);
        let n = self.peers.len();
        let mut mixture = vec![0.0f64; m + 1];
        for i in 0..n {
            let pmf = network.marginal_pmf(i, m, &gc);
            for (b, p) in pmf.into_iter().enumerate() {
                mixture[b] += p / n as f64;
            }
        }
        Ok(gini_from_pmf(&mixture)?)
    }
}

/// Analyzes a [`CreditMarket`] instance: routing follows the market's
/// utilization profile (complete mixing for the symmetric cases,
/// neighbor routing for the asymmetric case), with the market's
/// spending rates and credit supply.
///
/// # Errors
/// Returns [`CoreError`] if the market's overlay is reducible (e.g.
/// disconnected after churn).
pub fn analyze_market(market: &CreditMarket) -> Result<MarketAnalysis, CoreError> {
    let service_rates = market.service_rates();
    if market.config().profile.complete_mixing() {
        let peers: Vec<NodeId> = market.graph().node_ids().collect();
        let matrix = crate::model::complete_mixing_routing(peers.len())?;
        MarketAnalysis::compute_with_matrix(peers, &matrix, &service_rates, market.ledger().total())
    } else {
        MarketAnalysis::compute(
            market.graph(),
            &service_rates,
            &BTreeMap::new(),
            market.ledger().total(),
        )
    }
}

/// Analyzes a live streaming swarm: routing weights come from current
/// chunk availability ("credit transfer probabilities to neighbors are
/// decided by their data chunks availability during streaming"), service
/// rates are uniform at `base_rate`, and the credit supply is
/// `total_credits`.
///
/// # Errors
/// Returns [`CoreError`] if the swarm's overlay is empty or reducible.
pub fn analyze_streaming<T: TradePolicy>(
    system: &StreamingSystem<T>,
    base_rate: f64,
    total_credits: u64,
) -> Result<MarketAnalysis, CoreError> {
    let weights = system.availability_weights();
    let rates: BTreeMap<NodeId, f64> = system.peers().map(|(id, _)| (id, base_rate)).collect();
    MarketAnalysis::compute(system.graph(), &rates, &weights, total_credits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::{run_market, MarketConfig, TopologyKind};
    use crate::model::{spending_rates, UtilizationProfile};
    use scrip_des::{SimRng, SimTime};
    use scrip_queueing::condensation::Threshold;
    use scrip_topology::generators::{self, ScaleFreeConfig};

    #[test]
    fn symmetric_market_is_sustainable_at_any_wealth() {
        let mut rng = SimRng::seed_from_u64(1);
        let g = generators::scale_free(&ScaleFreeConfig::new(60).expect("cfg"), &mut rng)
            .expect("graph");
        let mu = spending_rates(&g, UtilizationProfile::Symmetric, 1.0, &mut rng).expect("rates");
        let peers: Vec<NodeId> = g.node_ids().collect();
        let matrix = crate::model::complete_mixing_routing(peers.len()).expect("matrix");
        let analysis = MarketAnalysis::compute_with_matrix(peers, &matrix, &mu, 60 * 10_000)
            .expect("analyzes");
        assert_eq!(analysis.threshold.threshold, Threshold::Divergent);
        assert_eq!(analysis.regime, Regime::Sustainable);
        // Expected wealth ≈ equal everywhere.
        let mean = analysis.average_wealth;
        for &w in &analysis.expected_wealth {
            assert!((w - mean).abs() / mean < 0.01, "wealth {w} vs mean {mean}");
        }
    }

    #[test]
    fn asymmetric_market_condenses_above_threshold() {
        let mut rng = SimRng::seed_from_u64(2);
        let g = generators::scale_free(&ScaleFreeConfig::new(60).expect("cfg"), &mut rng)
            .expect("graph");
        let mu = spending_rates(&g, UtilizationProfile::Asymmetric, 1.0, &mut rng).expect("rates");
        // Plenty of credits: condensing.
        let rich =
            MarketAnalysis::compute(&g, &mu, &BTreeMap::new(), 60 * 1_000).expect("analyzes");
        let t = rich
            .threshold
            .threshold
            .value()
            .expect("finite threshold for skewed utilizations");
        assert!(t > 0.0);
        assert_eq!(rich.regime, Regime::Condensing);
        // Hub peers hold most of the expected wealth.
        let max = rich.expected_wealth.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            max > 20.0 * rich.average_wealth,
            "condensate holds {max} vs average {}",
            rich.average_wealth
        );
    }

    #[test]
    fn expected_wealth_sums_to_supply() {
        let mut rng = SimRng::seed_from_u64(3);
        let g = generators::scale_free(&ScaleFreeConfig::new(40).expect("cfg"), &mut rng)
            .expect("graph");
        let mu = spending_rates(&g, UtilizationProfile::Asymmetric, 1.0, &mut rng).expect("rates");
        let m = 40 * 25u64;
        let analysis = MarketAnalysis::compute(&g, &mu, &BTreeMap::new(), m).expect("analyzes");
        let total: f64 = analysis.expected_wealth.iter().sum();
        assert!((total - m as f64).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn population_gini_tracks_condensation() {
        let mut rng = SimRng::seed_from_u64(4);
        let g = generators::scale_free(&ScaleFreeConfig::new(50).expect("cfg"), &mut rng)
            .expect("graph");
        let sym_mu =
            spending_rates(&g, UtilizationProfile::Symmetric, 1.0, &mut rng).expect("rates");
        let asym_mu =
            spending_rates(&g, UtilizationProfile::Asymmetric, 1.0, &mut rng).expect("rates");
        let m = 50 * 40u64;
        let peers: Vec<NodeId> = g.node_ids().collect();
        let mixing = crate::model::complete_mixing_routing(peers.len()).expect("matrix");
        let sym = MarketAnalysis::compute_with_matrix(peers, &mixing, &sym_mu, m).expect("ok");
        let asym = MarketAnalysis::compute(&g, &asym_mu, &BTreeMap::new(), m).expect("ok");
        let g_sym = sym.population_gini(m).expect("gini");
        let g_asym = asym.population_gini(m).expect("gini");
        assert!(
            g_asym > g_sym + 0.1,
            "asymmetric {g_asym} vs symmetric {g_sym}"
        );
    }

    #[test]
    fn analyze_market_end_to_end() {
        let market = run_market(
            MarketConfig::new(30, 20).topology(TopologyKind::Complete),
            5,
            SimTime::from_secs(200),
        )
        .expect("runs");
        let analysis = analyze_market(&market).expect("analyzes");
        assert_eq!(analysis.peers.len(), 30);
        assert!((analysis.average_wealth - 20.0).abs() < 1e-9);
        // Complete graph with flat rates: symmetric ⇒ divergent threshold.
        assert_eq!(analysis.threshold.threshold, Threshold::Divergent);
    }

    #[test]
    fn analyze_streaming_uses_availability() {
        use crate::protocol::StreamingMarket;
        let mut rng = SimRng::seed_from_u64(6);
        let g = generators::scale_free(&ScaleFreeConfig::new(40).expect("cfg"), &mut rng)
            .expect("graph");
        let system = StreamingMarket::new(100)
            .run(g, 11, SimTime::from_secs(90))
            .expect("runs");
        match analyze_streaming(&system, 1.0, 40 * 100) {
            Ok(analysis) => {
                assert_eq!(analysis.peers.len(), 40);
                assert!(analysis.utilizations.iter().all(|&u| u > 0.0 && u <= 1.0));
            }
            Err(CoreError::Queueing(_)) => {
                // Availability-weighted routing can be reducible at a
                // given instant (some peer buys from nobody); acceptable.
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}

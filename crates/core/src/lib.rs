//! # scrip-core — credit-incentivized P2P content distribution
//!
//! The primary crate of the `scrip` workspace: a full reproduction of
//! Qiu, Huang, Wu, Li, Lau — *"Exploring the Sustainability of
//! Credit-incentivized Peer-to-Peer Content Distribution"*, 32nd ICDCS
//! Workshops (ICDCSW 2012), pp. 118–126.
//!
//! The paper asks whether a P2P market that pays for chunk uploads with
//! virtual credits can stay healthy over long horizons, or whether
//! credits inevitably **condense** onto a few peers (the "Capitol Hill
//! babysitting co-op" collapse). Its contributions, all implemented
//! here:
//!
//! 1. **Model** ([`model`], with the math in [`scrip_queueing`]): a
//!    credit market mapped onto a closed Jackson network — peer = queue,
//!    credit = job, spending rate = service rate, purchase preferences =
//!    routing matrix (Table I).
//! 2. **Theory**: equilibrium existence (Lemma 1), the condensation
//!    threshold `T` (Eq. 4, Theorems 2–3), finite-network skewness via
//!    the Gini index, and the efficiency trade-off (Eq. 9).
//! 3. **Simulation** ([`market`] and [`protocol`]): a queue-level market
//!    simulator matching the model exactly, and a protocol-level
//!    simulator where credits gate chunk transfers inside a mesh-pull
//!    live-streaming swarm ([`scrip_streaming`]). Counter-measures —
//!    taxation ([`policy::Taxation`]) and dynamic spending rates
//!    ([`policy::SpendingPolicy`]) — and churn (open market) are
//!    supported by both the simulators and the analytics. One
//!    observation layer ([`obs`]) runs either simulator behind a
//!    unified [`obs::Session`] and measures it through pluggable
//!    [`obs::Probe`]s. Queue-level runs can be partitioned over
//!    execution shards ([`sharded`]) with byte-identical output.
//!
//! ## Quickstart
//!
//! ```
//! use scrip_core::market::{CreditMarket, MarketConfig, MarketEvent};
//! use scrip_des::{SimTime, Simulation};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 100-peer market, 20 credits each, asymmetric utilization.
//! let config = MarketConfig::new(100, 20).asymmetric();
//! let market = CreditMarket::build(config, 42)?;
//! let mut sim = Simulation::new(market);
//! sim.schedule(SimTime::ZERO, MarketEvent::Bootstrap);
//! sim.run_until(SimTime::from_secs(2_000));
//!
//! let market = sim.model();
//! let gini = market.wealth_gini()?;
//! assert!((0.0..=1.0).contains(&gini));
//! // The Jackson-network analysis of the same market:
//! let analysis = scrip_core::mapping::analyze_market(market)?;
//! println!("threshold: {}, regime: {}", analysis.threshold.threshold, analysis.regime);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auction;
pub mod credits;
mod error;
pub mod mapping;
pub mod market;
pub mod model;
pub mod obs;
pub mod policy;
pub mod pricing;
pub mod protocol;
pub mod sharded;
pub(crate) mod snapshot;
pub mod spec;

pub use credits::Ledger;
pub use error::CoreError;

// The dense slot map lives in `scrip-topology` (next to the graph that
// shares its discipline) so the streaming crate can use it too; the old
// `scrip_core::arena` path keeps working through this re-export.
pub use scrip_topology::arena;

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use scrip_des as des;
pub use scrip_econ as econ;
pub use scrip_queueing as queueing;
pub use scrip_streaming as streaming;
pub use scrip_topology as topology;

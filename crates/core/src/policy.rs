//! Condensation counter-measures: taxation (paper Sec. VI-C) and dynamic
//! spending rates (Sec. VI-D).

use scrip_des::SimRng;

use crate::error::CoreError;

/// How a peer's maximum credit spending rate responds to its wealth.
///
/// The paper's Sec. VI-D rule: a peer spends at its base rate `μ_s`
/// until its wealth exceeds a threshold `m`, beyond which it spends
/// proportionally faster (`μ = μ_s · B/m`), draining excess wealth and
/// mitigating condensation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpendingPolicy {
    /// Spend at the base rate regardless of wealth (the paper's default).
    #[default]
    Fixed,
    /// Spend faster when wealth exceeds `threshold`:
    /// `μ = μ_s · max(1, B/threshold)`.
    Dynamic {
        /// Wealth threshold `m` above which spending accelerates.
        threshold: u64,
    },
}

impl SpendingPolicy {
    /// The effective maximum spending rate for a peer with base rate
    /// `base` and current wealth `wealth`.
    pub fn effective_rate(&self, base: f64, wealth: u64) -> f64 {
        match *self {
            SpendingPolicy::Fixed => base,
            SpendingPolicy::Dynamic { threshold } => {
                if threshold == 0 {
                    base
                } else if wealth > threshold {
                    base * wealth as f64 / threshold as f64
                } else {
                    base
                }
            }
        }
    }
}

/// Income-tax configuration (paper Sec. VI-C).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaxConfig {
    /// Fraction of income withheld from wealthy peers (0.1 and 0.2 in
    /// the paper).
    pub rate: f64,
    /// Wealth threshold above which income is taxed (50 and 80 in the
    /// paper, against an average wealth of 100).
    pub threshold: u64,
}

impl TaxConfig {
    /// Creates a validated tax configuration.
    ///
    /// # Errors
    /// Returns [`CoreError::Config`] unless `0 < rate <= 1`.
    pub fn new(rate: f64, threshold: u64) -> Result<Self, CoreError> {
        if !rate.is_finite() || rate <= 0.0 || rate > 1.0 {
            return Err(CoreError::Config(format!("tax rate {rate} outside (0, 1]")));
        }
        Ok(TaxConfig { rate, threshold })
    }
}

/// Running taxation state: assessment plus collection counters.
///
/// The paper's mechanism: "For a peer with a wealth above a given tax
/// threshold, the system collects a fixed proportion of its income.
/// Whenever the system has collected N units of credits, it returns a
/// unit to each peer." Credits sit in the ledger's escrow between
/// collection and redistribution.
///
/// Because credits are indivisible and incomes are small (often 1
/// credit), the fractional assessment `rate × income` is realised by
/// probabilistic rounding, which collects the exact expected amount.
#[derive(Clone, Debug, PartialEq)]
pub struct Taxation {
    config: TaxConfig,
    /// Total credits ever collected into escrow.
    pub collected: u64,
    /// Total credits ever redistributed from escrow.
    pub redistributed: u64,
}

impl Taxation {
    /// Creates taxation state from a validated config.
    pub fn new(config: TaxConfig) -> Self {
        Taxation {
            config,
            collected: 0,
            redistributed: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> TaxConfig {
        self.config
    }

    /// Assesses the tax due on `income` credits received by a peer whose
    /// wealth (including this income) is `wealth`. Uses probabilistic
    /// rounding so that the expected assessment equals
    /// `rate × income` exactly.
    pub fn assess(&self, income: u64, wealth: u64, rng: &mut SimRng) -> u64 {
        if wealth <= self.config.threshold || income == 0 {
            return 0;
        }
        let due = self.config.rate * income as f64;
        let floor = due.floor();
        let frac = due - floor;
        let mut tax = floor as u64;
        if rng.chance(frac) {
            tax += 1;
        }
        tax.min(income)
    }

    /// Records that `amount` credits were actually withheld.
    pub fn record_collection(&mut self, amount: u64) {
        self.collected += amount;
    }

    /// Records that `amount` credits were redistributed.
    pub fn record_redistribution(&mut self, amount: u64) {
        self.redistributed += amount;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_ignores_wealth() {
        let p = SpendingPolicy::Fixed;
        assert_eq!(p.effective_rate(2.0, 0), 2.0);
        assert_eq!(p.effective_rate(2.0, 1_000_000), 2.0);
    }

    #[test]
    fn dynamic_policy_scales_above_threshold() {
        let p = SpendingPolicy::Dynamic { threshold: 100 };
        assert_eq!(p.effective_rate(1.0, 50), 1.0);
        assert_eq!(p.effective_rate(1.0, 100), 1.0);
        assert_eq!(p.effective_rate(1.0, 300), 3.0);
        // Degenerate threshold keeps the base rate.
        let p0 = SpendingPolicy::Dynamic { threshold: 0 };
        assert_eq!(p0.effective_rate(1.0, 500), 1.0);
    }

    #[test]
    fn tax_config_validation() {
        assert!(TaxConfig::new(0.1, 50).is_ok());
        assert!(TaxConfig::new(1.0, 0).is_ok());
        assert!(TaxConfig::new(0.0, 50).is_err());
        assert!(TaxConfig::new(1.5, 50).is_err());
        assert!(TaxConfig::new(f64::NAN, 50).is_err());
    }

    #[test]
    fn assessment_respects_threshold() {
        let tax = Taxation::new(TaxConfig::new(0.5, 100).expect("valid"));
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(tax.assess(10, 100, &mut rng), 0, "at threshold: no tax");
        assert_eq!(tax.assess(0, 500, &mut rng), 0, "no income: no tax");
        let t = tax.assess(10, 101, &mut rng);
        assert_eq!(t, 5, "0.5 × 10 = 5 exactly");
    }

    #[test]
    fn probabilistic_rounding_is_unbiased() {
        let tax = Taxation::new(TaxConfig::new(0.1, 0).expect("valid"));
        let mut rng = SimRng::seed_from_u64(2);
        let trials = 100_000;
        let total: u64 = (0..trials).map(|_| tax.assess(1, 10, &mut rng)).sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 0.1).abs() < 0.01, "mean assessment {mean}");
    }

    #[test]
    fn assessment_never_exceeds_income() {
        let tax = Taxation::new(TaxConfig::new(1.0, 0).expect("valid"));
        let mut rng = SimRng::seed_from_u64(3);
        for income in 1..20u64 {
            assert!(tax.assess(income, 1_000, &mut rng) <= income);
        }
    }

    #[test]
    fn counters_accumulate() {
        let mut tax = Taxation::new(TaxConfig::new(0.2, 10).expect("valid"));
        tax.record_collection(7);
        tax.record_collection(3);
        tax.record_redistribution(5);
        assert_eq!(tax.collected, 10);
        assert_eq!(tax.redistributed, 5);
        assert_eq!(tax.config().threshold, 10);
    }
}

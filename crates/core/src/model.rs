//! The market ↔ queueing-network mapping (paper Table I).
//!
//! | P2P market                              | Queueing network            |
//! |-----------------------------------------|-----------------------------|
//! | peer *i*                                | queue *i*                   |
//! | a unit credit                           | a job                       |
//! | credits held by peer *i* (`B_i`)        | jobs at queue *i*           |
//! | total credits `M`                       | total jobs `M`              |
//! | fraction of *i*'s purchases from *j*    | routing probability `p_ij`  |
//! | peer *i*'s credit spending rate `μ_i`   | service rate of queue *i*   |
//! | peer *i*'s income rate `λ_i`            | arrival rate at queue *i*   |
//!
//! This module builds the queueing-side objects (routing matrices,
//! service-rate vectors) from market-side state (overlay graphs, rate
//! profiles, availability weights).

use std::collections::BTreeMap;

use scrip_queueing::TransferMatrix;
use scrip_topology::{Graph, NodeId};

use crate::error::CoreError;

/// Which utilization regime the market is configured for (paper
/// Sec. VI: "We configure the credit earning and spending rates into two
/// cases").
///
/// * **Symmetric** — the paper's streaming-with-uniform-pricing case
///   (Sec. V-C case 1): all spending rates equal and credit transfer
///   probabilities equal over *all* other peers,
///   `p_ij = (1 − p_ii)/(N − 1)`, hence `λ` uniform and `u ≡ 1` exactly.
///   The corollary applies: `T = ∞`, no condensation.
/// * **NearSymmetric** — symmetric routing but spending rates jittered
///   by ±`spread`: `μ_i = base·(1 + ε_i)`, `ε_i ~ U(−spread, spread)`.
///   Utilizations spread mildly below 1, the threshold `T` becomes
///   finite, and condensation appears once `c > T` — the regime of a
///   real protocol whose availability-driven routing is only nominally
///   symmetric.
/// * **Asymmetric** — the elastic-content case (Sec. V-C case 2): flat
///   `μ_i = base` but spending routed uniformly over *overlay
///   neighbors*, so income flows are proportional to degree. On the
///   paper's scale-free overlays this yields a heavy-tailed utilization
///   spread and aggressive condensation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum UtilizationProfile {
    /// Exactly equal utilization at every peer (`u_i = 1`).
    Symmetric,
    /// Complete-mixing routing with rate jitter `±spread` (finite `T`).
    NearSymmetric {
        /// Relative half-width of the spending-rate jitter.
        spread: f64,
    },
    /// Degree-skewed utilization (heterogeneous `u`).
    #[default]
    Asymmetric,
}

impl UtilizationProfile {
    /// Whether spending is routed over all peers (complete mixing) as
    /// opposed to overlay neighbors.
    pub fn complete_mixing(&self) -> bool {
        !matches!(self, UtilizationProfile::Asymmetric)
    }
}

/// Uniform routing: each peer spends equally over its neighbors
/// (`p_ij = 1/d_i`). Peers without neighbors reserve their credits
/// (`p_ii = 1`). Returns the dense peer ordering alongside the matrix so
/// rows can be mapped back to [`NodeId`]s.
///
/// # Errors
/// Returns [`CoreError::Config`] for an empty graph.
pub fn uniform_routing(graph: &Graph) -> Result<(Vec<NodeId>, TransferMatrix), CoreError> {
    let ids: Vec<NodeId> = graph.node_ids().collect();
    if ids.is_empty() {
        return Err(CoreError::Config("empty overlay".into()));
    }
    let index = graph.dense_index();
    let weights: Vec<Vec<(usize, f64)>> = ids
        .iter()
        .map(|&id| {
            graph
                .neighbors(id)
                .map(|nbrs| nbrs.map(|nb| (index[&nb], 1.0)).collect())
                .unwrap_or_default()
        })
        .collect();
    let matrix = TransferMatrix::from_weighted_rows(ids.len(), &weights)?;
    Ok((ids, matrix))
}

/// Weighted routing from per-peer `(neighbor, weight)` lists — e.g. the
/// chunk-availability weights of a live streaming swarm ("credit
/// transfer probabilities to neighbors are decided by their data chunks
/// availability"). Rows with no weights fall back to uniform routing
/// over the graph neighbors, and isolated peers reserve their credits.
///
/// # Errors
/// Returns [`CoreError::Config`] for an empty graph and propagates
/// invalid weights.
pub fn weighted_routing(
    graph: &Graph,
    weights: &BTreeMap<NodeId, Vec<(NodeId, f64)>>,
) -> Result<(Vec<NodeId>, TransferMatrix), CoreError> {
    let ids: Vec<NodeId> = graph.node_ids().collect();
    if ids.is_empty() {
        return Err(CoreError::Config("empty overlay".into()));
    }
    let index = graph.dense_index();
    let rows: Vec<Vec<(usize, f64)>> = ids
        .iter()
        .map(|&id| {
            let explicit: Vec<(usize, f64)> = weights
                .get(&id)
                .map(|list| {
                    list.iter()
                        .filter(|(nb, _)| index.contains_key(nb))
                        .map(|&(nb, w)| (index[&nb], w))
                        .collect()
                })
                .unwrap_or_default();
            if !explicit.is_empty() {
                explicit
            } else {
                graph
                    .neighbors(id)
                    .map(|nbrs| nbrs.map(|nb| (index[&nb], 1.0)).collect())
                    .unwrap_or_default()
            }
        })
        .collect();
    let matrix = TransferMatrix::from_weighted_rows(ids.len(), &rows)?;
    Ok((ids, matrix))
}

/// Complete-mixing routing over `n` peers: `p_ij = 1/(n−1)` for `j ≠ i`
/// — the paper's Sec. V-C streaming case where "there is no difference
/// among neighbors of peer i".
///
/// # Errors
/// Returns [`CoreError::Config`] for `n < 2`.
pub fn complete_mixing_routing(n: usize) -> Result<TransferMatrix, CoreError> {
    if n < 2 {
        return Err(CoreError::Config(format!(
            "complete mixing needs n >= 2, got {n}"
        )));
    }
    let p = 1.0 / (n as f64 - 1.0);
    let mut data = vec![p; n * n];
    for i in 0..n {
        data[i * n + i] = 0.0;
    }
    Ok(TransferMatrix::from_flat(n, data)?)
}

/// Assigns per-peer base spending rates realizing a utilization profile
/// (see [`UtilizationProfile`]).
///
/// # Errors
/// Returns [`CoreError::Config`] for an empty graph, non-positive
/// `base_rate`, or a jitter spread outside `[0, 1)`.
pub fn spending_rates(
    graph: &Graph,
    profile: UtilizationProfile,
    base_rate: f64,
    rng: &mut scrip_des::SimRng,
) -> Result<BTreeMap<NodeId, f64>, CoreError> {
    if graph.node_count() == 0 {
        return Err(CoreError::Config("empty overlay".into()));
    }
    if !(base_rate.is_finite() && base_rate > 0.0) {
        return Err(CoreError::Config(format!(
            "base spending rate must be > 0, got {base_rate}"
        )));
    }
    match profile {
        UtilizationProfile::Symmetric | UtilizationProfile::Asymmetric => {
            Ok(graph.node_ids().map(|id| (id, base_rate)).collect())
        }
        UtilizationProfile::NearSymmetric { spread } => {
            if !(0.0..1.0).contains(&spread) {
                return Err(CoreError::Config(format!(
                    "rate jitter spread {spread} outside [0, 1)"
                )));
            }
            Ok(graph
                .node_ids()
                .map(|id| {
                    let eps = (rng.uniform_f64() * 2.0 - 1.0) * spread;
                    (id, base_rate * (1.0 + eps))
                })
                .collect())
        }
    }
}

/// The spending rate a joining peer receives under a profile.
pub fn joiner_spending_rate(
    profile: UtilizationProfile,
    base_rate: f64,
    rng: &mut scrip_des::SimRng,
) -> f64 {
    match profile {
        UtilizationProfile::Symmetric | UtilizationProfile::Asymmetric => base_rate,
        UtilizationProfile::NearSymmetric { spread } => {
            let eps = (rng.uniform_f64() * 2.0 - 1.0) * spread;
            base_rate * (1.0 + eps)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrip_des::SimRng;
    use scrip_queueing::closed::normalized_utilizations;
    use scrip_queueing::stationary::{stationary_flows, SolveMethod};
    use scrip_topology::generators::{self, ScaleFreeConfig};

    #[test]
    fn uniform_routing_rows() {
        let g = generators::ring(4).expect("valid");
        let (ids, p) = uniform_routing(&g).expect("built");
        assert_eq!(ids.len(), 4);
        // Ring: each peer splits 50/50 over two neighbors.
        assert_eq!(p.get(0, 1), 0.5);
        assert_eq!(p.get(0, 3), 0.5);
        assert_eq!(p.get(0, 0), 0.0);
    }

    #[test]
    fn uniform_routing_isolated_peer_reserves() {
        let mut g = Graph::new();
        let _a = g.add_node();
        let (_, p) = uniform_routing(&g).expect("built");
        assert_eq!(p.get(0, 0), 1.0);
        assert!(uniform_routing(&Graph::new()).is_err());
    }

    #[test]
    fn symmetric_profile_yields_unit_utilization() {
        // Complete mixing + equal spending rates ⇒ uniform flows ⇒ u ≡ 1.
        let mut rng = SimRng::seed_from_u64(5);
        let g = generators::scale_free(&ScaleFreeConfig::new(80).expect("cfg"), &mut rng)
            .expect("graph");
        let p = complete_mixing_routing(g.node_count()).expect("built");
        let flows = stationary_flows(&p, SolveMethod::Direct).expect("solved");
        let mu_map =
            spending_rates(&g, UtilizationProfile::Symmetric, 1.0, &mut rng).expect("rates");
        let ids: Vec<NodeId> = g.node_ids().collect();
        let mu: Vec<f64> = ids.iter().map(|id| mu_map[id]).collect();
        let u = normalized_utilizations(&flows, &mu).expect("valid");
        for (i, &ui) in u.iter().enumerate() {
            assert!((ui - 1.0).abs() < 1e-9, "u[{i}] = {ui}");
        }
        assert!(UtilizationProfile::Symmetric.complete_mixing());
    }

    #[test]
    fn near_symmetric_profile_has_mild_spread() {
        let mut rng = SimRng::seed_from_u64(7);
        let g = generators::scale_free(&ScaleFreeConfig::new(80).expect("cfg"), &mut rng)
            .expect("graph");
        let p = complete_mixing_routing(g.node_count()).expect("built");
        let flows = stationary_flows(&p, SolveMethod::Direct).expect("solved");
        let profile = UtilizationProfile::NearSymmetric { spread: 0.1 };
        let mu_map = spending_rates(&g, profile, 1.0, &mut rng).expect("rates");
        let ids: Vec<NodeId> = g.node_ids().collect();
        let mu: Vec<f64> = ids.iter().map(|id| mu_map[id]).collect();
        let u = normalized_utilizations(&flows, &mu).expect("valid");
        let min = u.iter().cloned().fold(f64::INFINITY, f64::min);
        // u ranges roughly within [0.9/1.1, 1] ≈ [0.82, 1].
        assert!(min > 0.7 && min < 1.0, "mild spread expected, min {min}");
        assert!(profile.complete_mixing());
        // Invalid spreads rejected.
        assert!(spending_rates(
            &g,
            UtilizationProfile::NearSymmetric { spread: 1.5 },
            1.0,
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn asymmetric_profile_spreads_utilization() {
        let mut rng = SimRng::seed_from_u64(6);
        let g = generators::scale_free(&ScaleFreeConfig::new(80).expect("cfg"), &mut rng)
            .expect("graph");
        let (ids, p) = uniform_routing(&g).expect("built");
        let flows = stationary_flows(&p, SolveMethod::Direct).expect("solved");
        let mu_map =
            spending_rates(&g, UtilizationProfile::Asymmetric, 1.0, &mut rng).expect("rates");
        let mu: Vec<f64> = ids.iter().map(|id| mu_map[id]).collect();
        let u = normalized_utilizations(&flows, &mu).expect("valid");
        let min = u.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min < 0.5, "utilization should be heavy-tailed, min {min}");
        assert!(!UtilizationProfile::Asymmetric.complete_mixing());
    }

    #[test]
    fn complete_mixing_matrix_shape() {
        let p = complete_mixing_routing(4).expect("built");
        assert_eq!(p.get(0, 0), 0.0);
        assert!((p.get(0, 1) - 1.0 / 3.0).abs() < 1e-12);
        assert!(complete_mixing_routing(1).is_err());
    }

    #[test]
    fn weighted_routing_uses_weights_and_falls_back() {
        let g = generators::ring(3).expect("valid");
        let ids: Vec<NodeId> = g.node_ids().collect();
        let mut weights = BTreeMap::new();
        // Peer 0 heavily prefers peer 1; peers 1, 2 have no recorded
        // availability and fall back to uniform.
        weights.insert(ids[0], vec![(ids[1], 3.0), (ids[2], 1.0)]);
        let (_, p) = weighted_routing(&g, &weights).expect("built");
        assert!((p.get(0, 1) - 0.75).abs() < 1e-12);
        assert!((p.get(0, 2) - 0.25).abs() < 1e-12);
        assert_eq!(p.get(1, 0), 0.5);
        assert_eq!(p.get(1, 2), 0.5);
    }

    #[test]
    fn weighted_routing_ignores_departed_neighbors() {
        let mut g = generators::ring(4).expect("valid");
        let ids: Vec<NodeId> = g.node_ids().collect();
        let mut weights = BTreeMap::new();
        weights.insert(ids[0], vec![(ids[1], 1.0), (ids[2], 1.0)]);
        g.remove_node(ids[2]).expect("live");
        let (_, p) = weighted_routing(&g, &weights).expect("built");
        // Dense index after removal: 0 -> 0, 1 -> 1, 3 -> 2.
        assert_eq!(p.get(0, 1), 1.0);
    }

    #[test]
    fn spending_rates_validation() {
        let mut rng = SimRng::seed_from_u64(1);
        let g = generators::ring(3).expect("valid");
        assert!(spending_rates(&g, UtilizationProfile::Symmetric, 0.0, &mut rng).is_err());
        assert!(
            spending_rates(&Graph::new(), UtilizationProfile::Symmetric, 1.0, &mut rng).is_err()
        );
    }

    #[test]
    fn joiner_rate_matches_profile() {
        let mut rng = SimRng::seed_from_u64(2);
        assert_eq!(
            joiner_spending_rate(UtilizationProfile::Asymmetric, 2.0, &mut rng),
            2.0
        );
        assert_eq!(
            joiner_spending_rate(UtilizationProfile::Symmetric, 2.0, &mut rng),
            2.0
        );
        let jittered = joiner_spending_rate(
            UtilizationProfile::NearSymmetric { spread: 0.1 },
            2.0,
            &mut rng,
        );
        assert!((1.8..=2.2).contains(&jittered), "rate {jittered}");
    }
}

//! The queue-level credit-market simulator.
//!
//! This simulator realizes the paper's model *directly*: each peer
//! attempts purchases at its (possibly wealth-dependent) spending rate,
//! each purchase moves `price` credits to a uniformly chosen neighbor,
//! and a broke peer's purchase simply fails — the queueing-network
//! dynamics of Table I with pricing, taxation, dynamic spending and
//! churn layered on top. It produces the Gini-over-time trajectories of
//! the paper's Figs. 5–11.
//!
//! For the *protocol-level* market — where purchases are real chunk
//! transfers inside a live-streaming swarm (Fig. 1) — see
//! [`crate::protocol`].

use std::collections::BTreeMap;

use scrip_des::stats::TimeSeries;
pub use scrip_des::FaultStats;
use scrip_des::{
    DeliveryOutcome, FaultPlan, FaultSpec, FenwickSampler, Model, QueueProfile, Scheduler,
    SimDuration, SimRng, SimTime,
};
use scrip_econ::gini_u64;
use scrip_topology::churn::ChurnTopology;
use scrip_topology::generators::{self, ScaleFreeConfig};
use scrip_topology::{Graph, NodeId};

use crate::arena::PeerArena;
use crate::credits::Ledger;
use crate::error::CoreError;
use crate::model::{joiner_spending_rate, spending_rates, UtilizationProfile};
use crate::policy::{SpendingPolicy, TaxConfig, Taxation};
use crate::pricing::{PricingConfig, PricingModel};

/// Churn (peer dynamics) configuration — paper Sec. VI-E.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnConfig {
    /// Poisson arrival rate of new peers (peers/sec).
    pub arrival_rate: f64,
    /// Mean exponential lifespan of a peer (seconds).
    pub mean_lifespan: f64,
    /// Number of neighbors a joiner attaches to.
    pub attach_degree: usize,
}

impl ChurnConfig {
    /// Creates a validated churn configuration.
    ///
    /// # Errors
    /// Returns [`CoreError::Config`] for non-positive rates or zero
    /// attach degree.
    pub fn new(
        arrival_rate: f64,
        mean_lifespan: f64,
        attach_degree: usize,
    ) -> Result<Self, CoreError> {
        if !(arrival_rate.is_finite() && arrival_rate > 0.0) {
            return Err(CoreError::Config(format!(
                "arrival rate must be > 0, got {arrival_rate}"
            )));
        }
        if !(mean_lifespan.is_finite() && mean_lifespan > 0.0) {
            return Err(CoreError::Config(format!(
                "mean lifespan must be > 0, got {mean_lifespan}"
            )));
        }
        if attach_degree == 0 {
            return Err(CoreError::Config("attach degree must be positive".into()));
        }
        Ok(ChurnConfig {
            arrival_rate,
            mean_lifespan,
            attach_degree,
        })
    }

    /// The expected steady-state overlay size, `arrival_rate ×
    /// mean_lifespan` (the paper keeps this at the initial size in
    /// Fig. 11(1)).
    pub fn expected_size(&self) -> f64 {
        self.arrival_rate * self.mean_lifespan
    }
}

/// The overlay family a market runs on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TopologyKind {
    /// The paper's default: scale-free, power-law exponent 2.5, ~20
    /// neighbors on average.
    #[default]
    ScaleFree,
    /// Complete graph (the Dandekar-et-al. baseline topology).
    Complete,
    /// Ring (a maximally sparse connected baseline).
    Ring,
    /// Random regular graph of the given degree.
    Regular(usize),
}

/// Full configuration of a credit market.
///
/// Defaults mirror the paper's Sec. VI settings: scale-free overlay,
/// uniform pricing at 1 credit/chunk, fixed spending policy, no tax, no
/// churn, Gini sampled every 100 s.
#[derive(Clone, Debug, PartialEq)]
pub struct MarketConfig {
    /// Initial number of peers.
    pub n: usize,
    /// Initial credits per peer (the paper's average wealth `c`).
    pub initial_credits: u64,
    /// Base credit spending rate `μ_s` (credits/sec).
    pub base_rate: f64,
    /// Utilization regime.
    pub profile: UtilizationProfile,
    /// Chunk pricing scheme.
    pub pricing: PricingConfig,
    /// Spending-rate policy.
    pub spending: SpendingPolicy,
    /// Optional income taxation.
    pub tax: Option<TaxConfig>,
    /// Optional peer churn.
    pub churn: Option<ChurnConfig>,
    /// Overlay family.
    pub topology: TopologyKind,
    /// Interval between Gini samples.
    pub sample_interval: SimDuration,
    /// Availability feedback (paper Sec. III-A): "the poor peers with few
    /// credits … have little content to sell for revenue". When enabled,
    /// a buyer's choice of seller is weighted by the seller's recent
    /// purchase activity (an inventory proxy), so long-broke peers also
    /// stop earning — the protocol-level death spiral, reproduced at the
    /// queue level. Only affects neighbor routing (the asymmetric
    /// profile).
    pub availability_feedback: bool,
    /// When set, the market is realized at *chunk granularity*: the
    /// configured mesh-pull streaming protocol runs on the overlay and
    /// every peer-to-peer chunk transfer is a credit trade through the
    /// shared ledger ([`crate::protocol::run_streaming_market`]). The
    /// topology, credits, pricing, taxation, churn and `sample_interval`
    /// keys apply as usual; `profile`, `spending`, `base_rate` and
    /// `availability_feedback` are queue-level concepts and are ignored
    /// (chunk availability plays their role for real).
    pub streaming: Option<scrip_streaming::StreamingConfig>,
    /// Number of execution shards the run is partitioned into (≥ 1).
    /// With `shards > 1` the run executes on the sharded kernel
    /// ([`crate::sharded`]): the overlay is split into balanced regions,
    /// per-shard event queues advance in lockstep tick windows, and
    /// trades whose buyer and seller live on different shards are
    /// settled through a cross-shard event log at window barriers.
    /// Output is **byte-identical** to `shards = 1` for any value.
    /// Queue-level markets only (rejected with streaming).
    pub shards: usize,
    /// Optional deterministic fault injection with trade recovery
    /// (paper Sec. III-A's unreliable-peer regime, realized as typed
    /// faults: dropped/delayed deliveries, seller defections, peer
    /// crashes). When set — and at least one rate is positive — every
    /// purchase moves its credits into per-trade escrow and settles
    /// only when the delivery completes; failed deliveries retry with
    /// capped exponential backoff against another seller and refund
    /// after [`FaultSpec::max_retries`]. `None` (or an all-zero spec)
    /// leaves the machinery unbuilt: the hot path takes a single extra
    /// branch and every trajectory is byte-identical to a build
    /// without this field.
    pub faults: Option<FaultSpec>,
}

impl MarketConfig {
    /// Paper defaults for `n` peers with `initial_credits` each
    /// (asymmetric utilization; use [`MarketConfig::symmetric`] for the
    /// balanced case).
    pub fn new(n: usize, initial_credits: u64) -> Self {
        MarketConfig {
            n,
            initial_credits,
            base_rate: 1.0,
            profile: UtilizationProfile::Asymmetric,
            pricing: PricingConfig::default(),
            spending: SpendingPolicy::default(),
            tax: None,
            churn: None,
            topology: TopologyKind::default(),
            sample_interval: SimDuration::from_secs(100),
            availability_feedback: false,
            streaming: None,
            shards: 1,
            faults: None,
        }
    }

    /// Enables availability feedback (sellers without recent purchases
    /// attract no buyers).
    pub fn with_availability_feedback(mut self) -> Self {
        self.availability_feedback = true;
        self
    }

    /// Selects symmetric utilization (`u ≡ 1`, complete mixing).
    pub fn symmetric(mut self) -> Self {
        self.profile = UtilizationProfile::Symmetric;
        self
    }

    /// Selects near-symmetric utilization: complete mixing with spending
    /// rates jittered by ±`spread`.
    pub fn near_symmetric(mut self, spread: f64) -> Self {
        self.profile = UtilizationProfile::NearSymmetric { spread };
        self
    }

    /// Selects asymmetric (degree-skewed) utilization.
    pub fn asymmetric(mut self) -> Self {
        self.profile = UtilizationProfile::Asymmetric;
        self
    }

    /// Sets the pricing scheme.
    pub fn pricing(mut self, pricing: PricingConfig) -> Self {
        self.pricing = pricing;
        self
    }

    /// Sets the spending policy.
    pub fn spending(mut self, spending: SpendingPolicy) -> Self {
        self.spending = spending;
        self
    }

    /// Enables income taxation.
    pub fn tax(mut self, tax: TaxConfig) -> Self {
        self.tax = Some(tax);
        self
    }

    /// Enables churn.
    pub fn churn(mut self, churn: ChurnConfig) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Sets the overlay family.
    pub fn topology(mut self, topology: TopologyKind) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the base spending rate (credits/sec).
    pub fn base_rate(mut self, rate: f64) -> Self {
        self.base_rate = rate;
        self
    }

    /// Sets the Gini sampling interval.
    pub fn sample_interval(mut self, interval: SimDuration) -> Self {
        self.sample_interval = interval;
        self
    }

    /// Partitions the run over `shards` execution shards (see
    /// [`MarketConfig::shards`]); output is byte-identical to serial.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Enables deterministic fault injection with escrow-backed trade
    /// recovery (see [`MarketConfig::faults`]).
    pub fn faults(mut self, faults: FaultSpec) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Realizes this market at chunk granularity: the given mesh-pull
    /// protocol runs on the overlay and chunk trades settle through the
    /// shared ledger (see [`MarketConfig::streaming`]).
    pub fn streaming_market(mut self, streaming: scrip_streaming::StreamingConfig) -> Self {
        self.streaming = Some(streaming);
        self
    }

    /// Checks the scalar parameters (population, rates, intervals,
    /// pricing) without realizing anything.
    ///
    /// # Errors
    /// Returns [`CoreError::Config`] for out-of-range values.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.n < 2 {
            return Err(CoreError::Config(format!(
                "need n >= 2 peers, got {}",
                self.n
            )));
        }
        if !(self.base_rate.is_finite() && self.base_rate > 0.0) {
            return Err(CoreError::Config(format!(
                "base rate must be > 0, got {}",
                self.base_rate
            )));
        }
        if self.sample_interval.is_zero() {
            return Err(CoreError::Config("sample interval must be positive".into()));
        }
        if self.shards == 0 {
            return Err(CoreError::Config("shards must be >= 1".into()));
        }
        if self.shards > 1 && self.streaming.is_some() {
            return Err(CoreError::Config(
                "sharded execution applies to queue-level markets only; \
                 streaming markets run serially (shards = 1)"
                    .into(),
            ));
        }
        self.pricing.validate()?;
        if let Some(faults) = &self.faults {
            faults.validate().map_err(CoreError::Config)?;
        }
        if let Some(streaming) = &self.streaming {
            streaming.validate().map_err(CoreError::Config)?;
        }
        Ok(())
    }

    pub(crate) fn build_graph(&self, rng: &mut SimRng) -> Result<Graph, CoreError> {
        match self.topology {
            TopologyKind::ScaleFree => {
                Ok(generators::scale_free(&ScaleFreeConfig::new(self.n)?, rng)?)
            }
            TopologyKind::Complete => Ok(generators::complete(self.n)),
            TopologyKind::Ring => Ok(generators::ring(self.n)?),
            TopologyKind::Regular(d) => Ok(generators::random_regular(self.n, d, rng)?),
        }
    }
}

/// One settled purchase, as observed by the trade-capture hook (used by
/// the sharded runner to classify trades as shard-local or
/// cross-shard).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct TradeRecord {
    /// The buying peer.
    pub buyer: NodeId,
    /// The selling peer (received the credits).
    pub seller: NodeId,
    /// Credits transferred.
    pub price: u64,
}

/// Events of the market simulator.
#[derive(Clone, Debug, PartialEq)]
pub enum MarketEvent {
    /// Starts all spending loops, sampling, and churn. Schedule once at
    /// the start of the run.
    Bootstrap,
    /// A peer attempts one purchase.
    Spend(NodeId),
    /// Record the Gini index of the current wealth distribution.
    Sample,
    /// A new peer arrives (churn).
    Join,
    /// A peer departs with its credits (churn).
    Leave(NodeId),
    /// An in-flight delivery completes (fault injection only): the
    /// trade escrowed at [`MarketEvent::Spend`] time resolves now —
    /// settle, drop, defect, or delay, per the fault plan.
    Deliver {
        /// The buying peer whose escrow backs the trade.
        buyer: NodeId,
        /// The selling peer expected to deliver.
        seller: NodeId,
        /// Credits escrowed for the trade.
        price: u64,
        /// 1-based delivery attempt number (grows on retries).
        attempt: u32,
    },
    /// A peer crashes abruptly (fault injection only) — an unplanned
    /// departure that exercises the same escrow-refund recovery as a
    /// graceful leave.
    Crash(NodeId),
}

impl MarketEvent {
    /// Serializes the event for a checkpoint's queue section.
    pub(crate) fn encode(&self, w: &mut crate::snapshot::Writer) {
        match self {
            MarketEvent::Bootstrap => w.put_u8(0),
            MarketEvent::Spend(id) => {
                w.put_u8(1);
                w.put_u64(id.raw());
            }
            MarketEvent::Sample => w.put_u8(2),
            MarketEvent::Join => w.put_u8(3),
            MarketEvent::Leave(id) => {
                w.put_u8(4);
                w.put_u64(id.raw());
            }
            MarketEvent::Deliver {
                buyer,
                seller,
                price,
                attempt,
            } => {
                w.put_u8(5);
                w.put_u64(buyer.raw());
                w.put_u64(seller.raw());
                w.put_u64(*price);
                w.put_u32(*attempt);
            }
            MarketEvent::Crash(id) => {
                w.put_u8(6);
                w.put_u64(id.raw());
            }
        }
    }

    /// Decodes an event written by [`MarketEvent::encode`].
    pub(crate) fn decode(r: &mut crate::snapshot::Reader<'_>) -> Result<Self, CoreError> {
        Ok(match r.take_u8()? {
            0 => MarketEvent::Bootstrap,
            1 => MarketEvent::Spend(NodeId::from_raw(r.take_u64()?)),
            2 => MarketEvent::Sample,
            3 => MarketEvent::Join,
            4 => MarketEvent::Leave(NodeId::from_raw(r.take_u64()?)),
            5 => MarketEvent::Deliver {
                buyer: NodeId::from_raw(r.take_u64()?),
                seller: NodeId::from_raw(r.take_u64()?),
                price: r.take_u64()?,
                attempt: r.take_u32()?,
            },
            6 => MarketEvent::Crash(NodeId::from_raw(r.take_u64()?)),
            tag => {
                return Err(CoreError::Checkpoint(format!(
                    "unknown market event tag {tag}"
                )))
            }
        })
    }

    /// Decodes one trace event payload (the bytes a recording
    /// [`crate::obs::Session`] stores per applied event) back into the
    /// event it encodes — the rendering hook for `trace-diff` and
    /// divergence reports.
    ///
    /// # Errors
    /// Returns [`CoreError::Checkpoint`] for truncated payloads, unknown
    /// tags, or trailing bytes.
    pub fn from_trace_payload(bytes: &[u8]) -> Result<Self, CoreError> {
        let mut r = crate::snapshot::Reader::new(bytes);
        let event = MarketEvent::decode(&mut r)?;
        r.finish()?;
        Ok(event)
    }
}

/// Component-by-component heap accounting for one [`CreditMarket`]
/// (the arena layout audit; see [`CreditMarket::memory_audit`]). All
/// figures are reserved capacities in bytes — the allocator's view, not
/// live lengths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryAudit {
    /// Live peers the per-peer figures are divided by.
    pub peers: usize,
    /// Slot bookkeeping: the market's `NodeId ↔ slot` arena plus the
    /// graph's slot/sorted-ID maps (not adjacency rows).
    pub arena_bytes: usize,
    /// Ledger wallets: balance slot map + balance vector.
    pub ledger_bytes: usize,
    /// Posted-price storage (0 under uniform pricing).
    pub pricing_bytes: usize,
    /// Spending rates `μ`, spent counters, and activity traces.
    pub rates_bytes: usize,
    /// CSR adjacency rows — degree-proportional (≈ 8 B × degree per
    /// peer), accounted apart from the flat per-peer state.
    pub adjacency_bytes: usize,
    /// Population-independent costs: the Fenwick seller-sampling
    /// scratch (sized by max degree), the wealth-histogram Gini tracker
    /// (sized by max wealth), and the Gini sample series (sized by
    /// horizon).
    pub fixed_bytes: usize,
}

impl MemoryAudit {
    /// Flat per-peer *state* bytes: everything that scales linearly
    /// with the live population (slot maps, wallets, prices, rates,
    /// counters, activity), excluding adjacency and fixed costs. The
    /// ≈100–150 B/peer budget from the performance model applies to
    /// this number.
    pub fn state_bytes_per_peer(&self) -> usize {
        if self.peers == 0 {
            return 0;
        }
        (self.arena_bytes + self.ledger_bytes + self.pricing_bytes + self.rates_bytes) / self.peers
    }

    /// Total audited heap bytes across all components.
    pub fn total_bytes(&self) -> usize {
        self.arena_bytes
            + self.ledger_bytes
            + self.pricing_bytes
            + self.rates_bytes
            + self.adjacency_bytes
            + self.fixed_bytes
    }
}

/// The running credit market: a [`Model`] for the
/// [`scrip_des::Simulation`] kernel.
///
/// All per-peer state is slot-indexed through one [`PeerArena`] (see
/// [`crate::arena`]), the overlay is borrowed as sorted neighbor slices
/// straight from the [`Graph`], and the wealth Gini is maintained online
/// by the ledger — so a spend event is allocation-free and O(1), and a
/// Gini sample is O(1). See the "Performance model" section of
/// `docs/ARCHITECTURE.md`.
///
/// See the [crate-level quickstart](crate) for an end-to-end example.
#[derive(Clone, Debug)]
pub struct CreditMarket {
    config: MarketConfig,
    graph: Graph,
    ledger: Ledger,
    pricing: PricingModel,
    taxation: Option<Taxation>,
    churn_topology: ChurnTopology,
    rng: SimRng,
    /// Live peers; `arena.ids()` doubles as the dense peer vector for
    /// O(1) complete-mixing sampling. The vectors below are parallel to
    /// it (index = slot).
    arena: PeerArena,
    /// Per-peer maximum spending rates `μ_i`.
    mu: Vec<f64>,
    /// Credits spent so far per peer.
    spent: Vec<u64>,
    /// Σ `spent` over live peers, maintained incrementally (bumped per
    /// purchase, reduced on departure) so [`CreditMarket::total_spent`]
    /// is O(1).
    total_spent: u64,
    /// Exponentially decayed recent-purchase activity per peer (the
    /// inventory proxy for availability feedback): `(value, last bump)`.
    activity: Vec<(f64, SimTime)>,
    /// Reused Fenwick tree for availability-feedback seller sampling
    /// (kept warm across events so the hot path never allocates). The
    /// weights time-decay, so each spend rebuilds in O(deg) and inverts
    /// the draw in O(log deg); the rebuild feeds the same weights in the
    /// same order as the linear walk it replaced, so draws are
    /// bit-identical.
    seller_sampler: FenwickSampler,
    denied: u64,
    purchases: u64,
    gini_series: TimeSeries,
    bootstrapped: bool,
    /// The deterministic fault oracle; present only when
    /// [`MarketConfig::faults`] has at least one positive rate, so the
    /// fault-free hot path pays a single `is_some` branch.
    fault_plan: Option<FaultPlan>,
    /// Credits escrowed for in-flight trades, per live buyer (parallel
    /// to the arena; all zero when faults are off).
    in_flight: Vec<u64>,
    /// Σ `in_flight`, maintained incrementally so the escrow-in-transit
    /// probe read is O(1).
    in_flight_total: u64,
    /// Fault/recovery counters.
    fault_stats: FaultStats,
    /// When present, every settled purchase is appended here (enabled
    /// only by the sharded runner; `None` keeps the serial hot path
    /// free of the recording branch's buffer traffic).
    trade_capture: Option<Vec<TradeRecord>>,
}

impl CreditMarket {
    /// Builds a market from a configuration and an RNG seed.
    ///
    /// # Errors
    /// Returns [`CoreError`] for invalid configurations or topology
    /// failures.
    pub fn build(config: MarketConfig, seed: u64) -> Result<Self, CoreError> {
        config.validate()?;
        if config.streaming.is_some() {
            return Err(CoreError::Config(
                "config selects a chunk-level streaming market; build it with \
                 crate::protocol::run_streaming_market instead"
                    .into(),
            ));
        }
        let mut rng = SimRng::seed_from_u64(seed);
        let graph = config.build_graph(&mut rng)?;
        let mut ledger = Ledger::new();
        for id in graph.node_ids() {
            ledger.mint(id, config.initial_credits);
        }
        ledger.enable_wealth_tracking();
        let mu_map = spending_rates(&graph, config.profile, config.base_rate, &mut rng)?;
        let peer_ids: Vec<NodeId> = graph.node_ids().collect();
        let pricing = PricingModel::realize(config.pricing, &peer_ids, &mut rng)?;
        let taxation = config.tax.map(Taxation::new);
        let mu = peer_ids.iter().map(|id| mu_map[id]).collect();
        let n = peer_ids.len();
        let attach = config.churn.map(|c| c.attach_degree).unwrap_or(20);
        // An all-zero spec builds no plan at all: the fault stream is
        // never derived and the run is byte-identical to `faults: None`.
        let fault_plan = match &config.faults {
            Some(spec) if spec.any_faults() => {
                Some(FaultPlan::new(*spec, seed).map_err(CoreError::Config)?)
            }
            _ => None,
        };
        Ok(CreditMarket {
            config,
            graph,
            ledger,
            pricing,
            taxation,
            churn_topology: ChurnTopology::new(attach),
            rng,
            arena: PeerArena::from_ids(&peer_ids),
            mu,
            spent: vec![0; n],
            total_spent: 0,
            activity: vec![(1.0, SimTime::ZERO); n],
            seller_sampler: FenwickSampler::new(),
            denied: 0,
            purchases: 0,
            gini_series: TimeSeries::new(),
            bootstrapped: false,
            fault_plan,
            in_flight: vec![0; n],
            in_flight_total: 0,
            fault_stats: FaultStats::default(),
            trade_capture: None,
        })
    }

    /// The configuration this market was built from.
    pub fn config(&self) -> &MarketConfig {
        &self.config
    }

    /// The current overlay.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The credit ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The per-peer maximum spending rates `μ_i`, keyed by peer
    /// (assembled on demand; the hot path uses the slot-indexed arena).
    pub fn service_rates(&self) -> BTreeMap<NodeId, f64> {
        self.arena
            .ids()
            .iter()
            .zip(&self.mu)
            .map(|(&id, &rate)| (id, rate))
            .collect()
    }

    /// The realized pricing model.
    pub fn pricing(&self) -> &PricingModel {
        &self.pricing
    }

    /// Taxation state, when taxation is enabled.
    pub fn taxation(&self) -> Option<&Taxation> {
        self.taxation.as_ref()
    }

    /// The recorded Gini-over-time trajectory.
    pub fn gini_series(&self) -> &TimeSeries {
        &self.gini_series
    }

    /// Gini index of the current wealth distribution. O(1): read from
    /// the ledger's online accumulator (bit-compatible with the
    /// [`gini_u64`] oracle).
    ///
    /// # Errors
    /// Returns [`CoreError::Econ`] if the market has no peers.
    pub fn wealth_gini(&self) -> Result<f64, CoreError> {
        match self.ledger.tracked_gini() {
            Some(g) => Ok(g),
            None => Ok(gini_u64(&self.ledger.balances_vec())?),
        }
    }

    /// Current balances sorted ascending (the y-values of the paper's
    /// Figs. 5–6).
    pub fn balances_sorted(&self) -> Vec<u64> {
        let mut v = self.ledger.balances_vec();
        v.sort_unstable();
        v
    }

    /// Credits spent so far, per live peer (assembled on demand; the hot
    /// path uses the slot-indexed arena).
    pub fn spent_per_peer(&self) -> BTreeMap<NodeId, u64> {
        self.arena
            .ids()
            .iter()
            .zip(&self.spent)
            .map(|(&id, &s)| (id, s))
            .collect()
    }

    /// Total credits spent by live peers. O(1): maintained incrementally
    /// alongside the per-peer counters (equal to
    /// `spent_per_peer().values().sum()`, without assembling the map).
    pub fn total_spent(&self) -> u64 {
        self.total_spent
    }

    /// Per-peer credit spending *rates* over `[0, now]`, sorted ascending
    /// — the series plotted in the paper's Fig. 1.
    pub fn spending_rates_sorted(&self, now: SimTime) -> Vec<f64> {
        let elapsed = now.as_secs_f64().max(1e-9);
        let mut rates: Vec<f64> = self.spent.iter().map(|&s| s as f64 / elapsed).collect();
        rates.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
        rates
    }

    /// Fault/recovery counters (all zero when faults are disabled).
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }

    /// Credits currently escrowed for in-flight deliveries. O(1).
    pub fn in_flight_escrow(&self) -> u64 {
        self.in_flight_total
    }

    /// Whether a fault plan is active on this market.
    pub fn faults_enabled(&self) -> bool {
        self.fault_plan.is_some()
    }

    /// Total purchase attempts refused for lack of credits.
    pub fn denied(&self) -> u64 {
        self.denied
    }

    /// Total successful purchases.
    pub fn purchases(&self) -> u64 {
        self.purchases
    }

    /// Number of live peers.
    pub fn peer_count(&self) -> usize {
        self.ledger.accounts()
    }

    /// The steady-state event-queue population this market sustains: one
    /// spend loop per peer, the sampling chain, and (under churn) one
    /// leave timer per peer plus the arrival process. Size the
    /// simulation's queue with this
    /// ([`scrip_des::Simulation::with_capacity`]) to keep scheduling
    /// reallocation-free; [`MarketEvent::Bootstrap`] reserves the same
    /// amount as a fallback for hand-built simulations.
    pub fn queue_capacity_hint(&self) -> usize {
        // Under faults, each peer may add a crash timer plus in-flight
        // delivery completions (short-lived, at most a few per peer).
        let faulted = usize::from(self.fault_plan.is_some());
        self.arena.len() * (1 + usize::from(self.config.churn.is_some()) + 2 * faulted) + 2
    }

    /// The event-queue backend this market wants: a timing wheel sized
    /// for the steady-state population from
    /// [`CreditMarket::queue_capacity_hint`], with the mean
    /// inter-attempt interval (`mean price / base rate`) as the typical
    /// scheduling lookahead. Spend timers land in the wheel's O(1)
    /// buckets; rarer far-future events (churn lifespans, sample
    /// boundaries) take its overflow heap.
    pub fn queue_profile(&self) -> QueueProfile {
        QueueProfile::Wheel {
            expected_events: self.queue_capacity_hint(),
            typical_delay: SimDuration::from_secs_f64(
                self.pricing.mean_price() / self.config.base_rate,
            ),
        }
    }

    /// Accounts the market's heap footprint component by component (the
    /// arena layout audit). Capacities, not lengths — the allocator's
    /// view. [`MemoryAudit::state_bytes_per_peer`] is the headline
    /// number: per-peer *state* (slot maps, balances, rates, spend
    /// counters, activity traces, posted prices), excluding the
    /// degree-proportional adjacency rows and the population-independent
    /// scratch/series/histogram costs, which the audit itemizes
    /// separately.
    pub fn memory_audit(&self) -> MemoryAudit {
        MemoryAudit {
            peers: self.arena.len(),
            arena_bytes: self.arena.heap_bytes() + self.graph.slot_map_heap_bytes(),
            ledger_bytes: self.ledger.heap_bytes(),
            pricing_bytes: self.pricing.heap_bytes(),
            rates_bytes: self.mu.capacity() * std::mem::size_of::<f64>()
                + self.spent.capacity() * std::mem::size_of::<u64>()
                + self.activity.capacity() * std::mem::size_of::<(f64, SimTime)>(),
            adjacency_bytes: self.graph.adjacency_heap_bytes(),
            fixed_bytes: self.seller_sampler.heap_bytes()
                + self.ledger.tracker_heap_bytes()
                + self.gini_series.heap_bytes(),
        }
    }

    /// Turns on trade capture: from now on every settled purchase is
    /// recorded for [`CreditMarket::take_trades`] to drain.
    pub(crate) fn enable_trade_capture(&mut self) {
        if self.trade_capture.is_none() {
            self.trade_capture = Some(Vec::new());
        }
    }

    /// Moves the captured trades into `into` (cleared first), keeping
    /// the capture buffer's capacity warm.
    pub(crate) fn take_trades(&mut self, into: &mut Vec<TradeRecord>) {
        into.clear();
        if let Some(trades) = &mut self.trade_capture {
            std::mem::swap(trades, into);
        }
    }

    /// Serializes every mutable market field into `w` — the model half
    /// of a [`crate::obs::Session`] checkpoint. Immutable inputs
    /// (config, churn topology, fault spec) are rebuilt from
    /// configuration on restore; everything else round-trips exactly,
    /// including slot layouts, so the continuation is byte-identical.
    pub(crate) fn write_state(&self, w: &mut crate::snapshot::Writer) {
        for word in self.rng.state() {
            w.put_u64(word);
        }
        w.put_bool(self.fault_plan.is_some());
        if let Some(plan) = &self.fault_plan {
            for word in plan.rng_state() {
                w.put_u64(word);
            }
            w.put_u64(plan.outcomes_drawn());
        }
        // Overlay: id watermark, live ids (ascending), edges.
        w.put_u64(self.graph.next_raw_id());
        let live: Vec<NodeId> = self.graph.node_ids().collect();
        w.put_u64(live.len() as u64);
        for id in &live {
            w.put_u64(id.raw());
        }
        let edges: Vec<(NodeId, NodeId)> = self.graph.edges().collect();
        w.put_u64(edges.len() as u64);
        for (a, b) in &edges {
            w.put_u64(a.raw());
            w.put_u64(b.raw());
        }
        // Arena slot order plus every slot-parallel vector. The order
        // matters: swap-removes made it churn-history-dependent, and
        // escrow sweeps iterate it.
        w.put_u64(self.arena.len() as u64);
        for (i, &id) in self.arena.ids().iter().enumerate() {
            w.put_u64(id.raw());
            w.put_f64(self.mu[i]);
            w.put_u64(self.spent[i]);
            w.put_f64(self.activity[i].0);
            w.put_u64(self.activity[i].1.as_micros());
            w.put_u64(self.in_flight[i]);
        }
        // Ledger: slot entries in its own slot order, plus pools.
        let entries: Vec<(NodeId, u64)> = self.ledger.slot_entries().collect();
        w.put_u64(entries.len() as u64);
        for (id, balance) in &entries {
            w.put_u64(id.raw());
            w.put_u64(*balance);
        }
        w.put_u64(self.ledger.escrow());
        w.put_u64(self.ledger.minted());
        w.put_u64(self.ledger.burned());
        // Scalar counters.
        w.put_u64(self.total_spent);
        w.put_u64(self.denied);
        w.put_u64(self.purchases);
        w.put_u64(self.in_flight_total);
        // Fault stats.
        w.put_u64(self.fault_stats.delivered);
        w.put_u64(self.fault_stats.dropped);
        w.put_u64(self.fault_stats.defected);
        w.put_u64(self.fault_stats.delayed);
        w.put_u64(self.fault_stats.retries);
        w.put_u64(self.fault_stats.refunded);
        w.put_u64(self.fault_stats.crashes);
        w.put_u64(self.fault_stats.retry_depth.len() as u64);
        for &d in &self.fault_stats.retry_depth {
            w.put_u64(d);
        }
        // Taxation accumulators.
        w.put_bool(self.taxation.is_some());
        if let Some(tax) = &self.taxation {
            w.put_u64(tax.collected);
            w.put_u64(tax.redistributed);
        }
        // Pricing: slot-ordered posted prices and the chunk-hash seed.
        let (sellers, price_seed) = self.pricing.snapshot_state();
        w.put_u64(sellers.len() as u64);
        for (id, price) in &sellers {
            w.put_u64(id.raw());
            w.put_u64(*price);
        }
        w.put_u64(price_seed);
        // Gini trajectory.
        w.put_u64(self.gini_series.len() as u64);
        for &(t, g) in self.gini_series.samples() {
            w.put_u64(t.as_micros());
            w.put_f64(g);
        }
        w.put_bool(self.bootstrapped);
    }

    /// FNV-1a digest of the complete mutable market state — a fold over
    /// the exact bytes `CreditMarket::write_state` would checkpoint
    /// (RNG streams, fault plan, graph, arena, ledger, escrow, pricing,
    /// Gini trajectory). Two markets with equal digests at a quiescent
    /// boundary are byte-identical for resume purposes; trace digest
    /// frames pin this value at every sampling boundary, and
    /// `tests/fixture_guard.rs` pins it for the golden configurations.
    pub fn state_digest(&self) -> u64 {
        let mut w = crate::snapshot::Writer::default();
        self.write_state(&mut w);
        crate::snapshot::fingerprint(w.as_slice())
    }

    /// Restores the state captured by [`CreditMarket::write_state`]
    /// into a market freshly built from the same configuration and
    /// seed.
    ///
    /// # Errors
    /// Returns [`CoreError::Checkpoint`] for truncated or inconsistent
    /// snapshots.
    pub(crate) fn read_state(
        &mut self,
        r: &mut crate::snapshot::Reader<'_>,
    ) -> Result<(), CoreError> {
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = r.take_u64()?;
        }
        self.rng = SimRng::from_state(rng_state);
        let has_plan = r.take_bool()?;
        match (&mut self.fault_plan, has_plan) {
            (Some(plan), true) => {
                let mut state = [0u64; 4];
                for word in &mut state {
                    *word = r.take_u64()?;
                }
                let drawn = r.take_u64()?;
                plan.restore(state, drawn);
            }
            (None, false) => {}
            (plan, _) => {
                return Err(CoreError::Checkpoint(format!(
                    "fault plan mismatch: snapshot has_plan={has_plan}, \
                     configuration builds {}",
                    if plan.is_some() { "one" } else { "none" }
                )));
            }
        }
        // Overlay rebuild through the public graph API: allocate the
        // full id watermark, drop the dead ids, relink the edges. All
        // market-visible graph reads (sorted ids, sorted neighbor
        // slices) are layout-independent, so this reproduces them
        // exactly.
        let watermark = r.take_u64()?;
        let live_count = r.take_u64()?;
        let mut live = Vec::with_capacity(live_count as usize);
        for _ in 0..live_count {
            live.push(NodeId::from_raw(r.take_u64()?));
        }
        let edge_count = r.take_u64()?;
        let mut edges = Vec::with_capacity(edge_count as usize);
        for _ in 0..edge_count {
            let a = NodeId::from_raw(r.take_u64()?);
            let b = NodeId::from_raw(r.take_u64()?);
            edges.push((a, b));
        }
        let mut graph = Graph::with_nodes(watermark as usize);
        for raw in 0..watermark {
            let id = NodeId::from_raw(raw);
            if live.binary_search(&id).is_err() {
                graph
                    .remove_node(id)
                    .map_err(|e| CoreError::Checkpoint(format!("graph rebuild: {e}")))?;
            }
        }
        for (a, b) in edges {
            graph
                .add_edge(a, b)
                .map_err(|e| CoreError::Checkpoint(format!("graph rebuild: {e}")))?;
        }
        self.graph = graph;
        // Arena and slot-parallel vectors, in the captured slot order.
        let n = r.take_u64()? as usize;
        let mut ids = Vec::with_capacity(n);
        self.mu.clear();
        self.spent.clear();
        self.activity.clear();
        self.in_flight.clear();
        for _ in 0..n {
            ids.push(NodeId::from_raw(r.take_u64()?));
            self.mu.push(r.take_f64()?);
            self.spent.push(r.take_u64()?);
            let value = r.take_f64()?;
            let last = SimTime::from_micros(r.take_u64()?);
            self.activity.push((value, last));
            self.in_flight.push(r.take_u64()?);
        }
        self.arena = PeerArena::from_ids(&ids);
        let entry_count = r.take_u64()? as usize;
        let mut entries = Vec::with_capacity(entry_count);
        for _ in 0..entry_count {
            let id = NodeId::from_raw(r.take_u64()?);
            let balance = r.take_u64()?;
            entries.push((id, balance));
        }
        let escrow = r.take_u64()?;
        let minted = r.take_u64()?;
        let burned = r.take_u64()?;
        self.ledger = Ledger::restore(&entries, escrow, minted, burned);
        self.ledger.enable_wealth_tracking();
        self.total_spent = r.take_u64()?;
        self.denied = r.take_u64()?;
        self.purchases = r.take_u64()?;
        self.in_flight_total = r.take_u64()?;
        self.fault_stats.delivered = r.take_u64()?;
        self.fault_stats.dropped = r.take_u64()?;
        self.fault_stats.defected = r.take_u64()?;
        self.fault_stats.delayed = r.take_u64()?;
        self.fault_stats.retries = r.take_u64()?;
        self.fault_stats.refunded = r.take_u64()?;
        self.fault_stats.crashes = r.take_u64()?;
        let depth = r.take_u64()? as usize;
        self.fault_stats.retry_depth.clear();
        for _ in 0..depth {
            self.fault_stats.retry_depth.push(r.take_u64()?);
        }
        let has_tax = r.take_bool()?;
        match (&mut self.taxation, has_tax) {
            (Some(tax), true) => {
                tax.collected = r.take_u64()?;
                tax.redistributed = r.take_u64()?;
            }
            (None, false) => {}
            (tax, _) => {
                return Err(CoreError::Checkpoint(format!(
                    "taxation mismatch: snapshot has_tax={has_tax}, \
                     configuration builds {}",
                    if tax.is_some() { "one" } else { "none" }
                )));
            }
        }
        let seller_count = r.take_u64()? as usize;
        let mut sellers = Vec::with_capacity(seller_count);
        for _ in 0..seller_count {
            let id = NodeId::from_raw(r.take_u64()?);
            let price = r.take_u64()?;
            sellers.push((id, price));
        }
        let price_seed = r.take_u64()?;
        self.pricing = PricingModel::restore_state(self.config.pricing, &sellers, price_seed)?;
        let sample_count = r.take_u64()? as usize;
        let mut series = TimeSeries::new();
        for _ in 0..sample_count {
            let t = SimTime::from_micros(r.take_u64()?);
            let g = r.take_f64()?;
            series.record(t, g);
        }
        self.gini_series = series;
        self.bootstrapped = r.take_bool()?;
        if !self.ledger.conserved() {
            return Err(CoreError::Checkpoint(
                "restored ledger violates conservation".into(),
            ));
        }
        Ok(())
    }

    fn exp_delay(&mut self, rate: f64) -> SimDuration {
        let u = self.rng.uniform_open01();
        SimDuration::from_secs_f64(-u.ln() / rate.max(1e-12))
    }

    fn schedule_spend(&mut self, id: NodeId, scheduler: &mut Scheduler<MarketEvent>) {
        let base = self
            .arena
            .slot(id)
            .map_or(self.config.base_rate, |s| self.mu[s]);
        let wealth = self.ledger.balance(id);
        let rate = self.config.spending.effective_rate(base, wealth);
        let attempt_rate = rate / self.pricing.mean_price();
        let delay = self.exp_delay(attempt_rate);
        scheduler.schedule_after(delay, MarketEvent::Spend(id));
    }

    /// Time constant (in units of mean inter-purchase intervals) for the
    /// availability-feedback activity decay.
    const ACTIVITY_DECAY_INTERVALS: f64 = 30.0;

    fn activity_time_constant(&self) -> f64 {
        Self::ACTIVITY_DECAY_INTERVALS * self.pricing.mean_price() / self.config.base_rate
    }

    /// Reads a peer's decayed recent-purchase activity. A free function
    /// over the arena-parallel state so the hot loop can hold disjoint
    /// borrows (graph slice + scratch buffer) while it runs.
    #[inline]
    fn activity_weight(
        arena: &PeerArena,
        activity: &[(f64, SimTime)],
        tau: f64,
        id: NodeId,
        now: SimTime,
    ) -> f64 {
        let Some(slot) = arena.slot(id) else {
            return 0.0;
        };
        let (value, last) = activity[slot];
        let dt = now.saturating_duration_since(last).as_secs_f64();
        value * (-dt / tau).exp()
    }

    /// Bumps a peer's activity after a successful purchase.
    fn bump_activity(&mut self, id: NodeId, now: SimTime) {
        let tau = self.activity_time_constant();
        let Some(slot) = self.arena.slot(id) else {
            debug_assert!(false, "activity bump for departed {id}");
            return;
        };
        let entry = &mut self.activity[slot];
        let dt = now.saturating_duration_since(entry.1).as_secs_f64();
        entry.0 = entry.0 * (-dt / tau).exp() + 1.0;
        entry.1 = now;
    }

    /// One purchase attempt — the market hot path. Allocation-free on
    /// the non-tax paths: the seller pick borrows the graph's neighbor
    /// slice (or the arena's dense peer list), availability weights go
    /// through a reused Fenwick sampler (O(log deg) inversion), and all
    /// per-peer state is slot-indexed.
    fn handle_spend(&mut self, id: NodeId, now: SimTime, scheduler: &mut Scheduler<MarketEvent>) {
        if !self.ledger.has_account(id) {
            return; // departed
        }
        let j = if self.config.profile.complete_mixing() {
            // Paper Sec. V-C: p_ij = (1 - p_ii)/(N - 1) over all peers.
            let peers = self.arena.ids();
            if peers.len() < 2 {
                self.schedule_spend(id, scheduler);
                return;
            }
            let mut pick;
            loop {
                pick = peers[self.rng.index(peers.len())];
                if pick != id {
                    break;
                }
            }
            pick
        } else {
            let neighbors = match self.graph.neighbor_slice(id) {
                Some(n) if !n.is_empty() => n,
                _ => {
                    self.schedule_spend(id, scheduler);
                    return;
                }
            };
            if self.config.availability_feedback {
                // Weight sellers by recent purchase activity: a peer that
                // has bought nothing lately has nothing on offer. The
                // sampler accumulates the same left-to-right total the
                // old linear walk did, so the uniform draw (and hence
                // the whole trajectory) is unchanged; only the inversion
                // is O(log deg) instead of O(deg).
                let tau = self.activity_time_constant();
                let mut sampler = std::mem::take(&mut self.seller_sampler);
                sampler.clear();
                for &nb in neighbors {
                    let w = Self::activity_weight(&self.arena, &self.activity, tau, nb, now) + 0.01;
                    sampler.push(w);
                }
                sampler.build();
                let target = self.rng.uniform_f64() * sampler.total();
                let pick = neighbors[sampler.pick(target)];
                self.seller_sampler = sampler;
                pick
            } else {
                neighbors[self.rng.index(neighbors.len())]
            }
        };
        let chunk = self.purchases + self.denied; // synthetic chunk id
        let price = self.pricing.price(j, chunk);
        let wealth = self.ledger.balance(id);
        if wealth >= price {
            if self.fault_plan.is_some() {
                // Recovery contract: the payment moves to per-trade
                // escrow now and settles only when the delivery
                // completes ([`MarketEvent::Deliver`]).
                let delay = self
                    .fault_plan
                    .as_mut()
                    .expect("checked above")
                    .delivery_latency();
                self.begin_trade(id, j, price, 1, delay, scheduler);
            } else {
                self.ledger
                    .transfer(id, j, price)
                    .expect("balance checked above");
                let buyer_slot = self.arena.slot(id).expect("buyer is live");
                self.spent[buyer_slot] += price;
                self.total_spent += price;
                self.purchases += 1;
                if let Some(trades) = &mut self.trade_capture {
                    trades.push(TradeRecord {
                        buyer: id,
                        seller: j,
                        price,
                    });
                }
                if self.config.availability_feedback {
                    self.bump_activity(id, now);
                }
                self.settle_tax(j, price);
            }
        } else {
            self.denied += 1;
        }
        self.schedule_spend(id, scheduler);
    }

    /// Income tax on the seller, if enabled and the seller is wealthy
    /// enough — shared by the direct settle in
    /// [`CreditMarket::handle_spend`] and the escrow settle in
    /// [`CreditMarket::settle_delivery`].
    fn settle_tax(&mut self, seller: NodeId, price: u64) {
        if let Some(tax) = &mut self.taxation {
            let seller_wealth = self.ledger.balance(seller);
            let due = tax.assess(price, seller_wealth, &mut self.rng);
            if due > 0 {
                let withheld = self.ledger.withhold_to_escrow(seller, due);
                tax.record_collection(withheld);
            }
            // Redistribute one credit to every peer whenever the
            // escrow can cover the whole population. The ledger's
            // escrow pool also backs in-flight trades under fault
            // injection; only the tax share (everything beyond
            // `in_flight_total`) may be redistributed, or the payout
            // would raid credits committed to open trades.
            let live = self.ledger.accounts() as u64;
            while live > 0 && self.ledger.escrow() - self.in_flight_total >= live {
                let paid = self.ledger.pay_each_from_escrow(1);
                tax.record_redistribution(paid);
                if paid == 0 {
                    break;
                }
            }
        }
    }

    /// Opens one escrow-backed trade: withholds `price` from the buyer
    /// and schedules the delivery completion after `delay`. `attempt`
    /// is 1 for fresh trades and grows across retries.
    fn begin_trade(
        &mut self,
        buyer: NodeId,
        seller: NodeId,
        price: u64,
        attempt: u32,
        delay: SimDuration,
        scheduler: &mut Scheduler<MarketEvent>,
    ) {
        let withheld = self.ledger.withhold_to_escrow(buyer, price);
        debug_assert_eq!(withheld, price, "caller checked the balance");
        let slot = self.arena.slot(buyer).expect("buyer is live");
        self.in_flight[slot] += price;
        self.in_flight_total += price;
        scheduler.schedule_after(
            delay,
            MarketEvent::Deliver {
                buyer,
                seller,
                price,
                attempt,
            },
        );
        assert!(
            self.ledger.conserved(),
            "escrow withholding broke conservation (buyer {buyer}, price {price})"
        );
    }

    /// Resolves one in-flight delivery — the fault-path counterpart of
    /// the direct settle in [`CreditMarket::handle_spend`].
    fn handle_deliver(
        &mut self,
        buyer: NodeId,
        seller: NodeId,
        price: u64,
        attempt: u32,
        now: SimTime,
        scheduler: &mut Scheduler<MarketEvent>,
    ) {
        if !self.ledger.has_account(buyer) {
            // The buyer departed (or crashed) while the delivery was
            // in transit; its escrow was already refunded at departure
            // and the trade no longer exists. No outcome draw.
            return;
        }
        let outcome = self
            .fault_plan
            .as_mut()
            .expect("Deliver events only exist under a fault plan")
            .delivery_outcome(now);
        let seller_live = self.ledger.has_account(seller);
        match outcome {
            DeliveryOutcome::Delayed => {
                self.fault_stats.delayed += 1;
                let penalty = self
                    .fault_plan
                    .as_mut()
                    .expect("plan present")
                    .delay_penalty();
                // The escrow stays put; the same attempt completes
                // later.
                scheduler.schedule_after(
                    penalty,
                    MarketEvent::Deliver {
                        buyer,
                        seller,
                        price,
                        attempt,
                    },
                );
            }
            DeliveryOutcome::Delivered if seller_live => {
                self.settle_delivery(buyer, seller, price, attempt, now);
            }
            DeliveryOutcome::Defected if seller_live => {
                self.settle_defect(buyer, seller, price, attempt, scheduler);
            }
            _ => {
                // Dropped — or delivered/defected against a seller
                // that departed mid-flight, which the buyer observes
                // as a drop.
                self.fault_stats.dropped += 1;
                self.retry_or_refund(buyer, seller, price, attempt, scheduler);
            }
        }
        assert!(
            self.ledger.conserved(),
            "delivery resolution broke conservation (buyer {buyer}, attempt {attempt})"
        );
    }

    /// Settles a completed escrow trade: pays the seller from escrow
    /// and applies the same side effects as a fault-free purchase.
    fn settle_delivery(
        &mut self,
        buyer: NodeId,
        seller: NodeId,
        price: u64,
        attempt: u32,
        now: SimTime,
    ) {
        let slot = self.arena.slot(buyer).expect("buyer is live");
        self.in_flight[slot] -= price;
        self.in_flight_total -= price;
        let paid = self.ledger.pay_from_escrow(seller, price);
        debug_assert_eq!(paid, price, "trade escrow fully funds the settle");
        self.spent[slot] += price;
        self.total_spent += price;
        self.purchases += 1;
        self.fault_stats.delivered += 1;
        self.fault_stats.note_conclusion(attempt);
        if let Some(trades) = &mut self.trade_capture {
            trades.push(TradeRecord {
                buyer,
                seller,
                price,
            });
        }
        if self.config.availability_feedback {
            self.bump_activity(buyer, now);
        }
        self.settle_tax(seller, price);
    }

    /// The seller takes the escrowed credits and never delivers. The
    /// lost credits count as spent (they left the buyer's wallet for
    /// good) but not as a purchase, and the trade is not captured for
    /// shard accounting — the buyer got nothing. Within the retry
    /// budget, an affordable buyer immediately buys again from another
    /// seller with fresh credits.
    fn settle_defect(
        &mut self,
        buyer: NodeId,
        seller: NodeId,
        price: u64,
        attempt: u32,
        scheduler: &mut Scheduler<MarketEvent>,
    ) {
        let slot = self.arena.slot(buyer).expect("buyer is live");
        self.in_flight[slot] -= price;
        self.in_flight_total -= price;
        let paid = self.ledger.pay_from_escrow(seller, price);
        debug_assert_eq!(paid, price, "trade escrow fully funds the defection");
        self.spent[slot] += price;
        self.total_spent += price;
        self.fault_stats.defected += 1;
        let max_retries = self
            .fault_plan
            .as_ref()
            .expect("plan present")
            .spec()
            .max_retries;
        if attempt > max_retries {
            // Retry budget exhausted: the buyer gives up on the chunk.
            self.fault_stats.note_conclusion(attempt);
        } else if self.ledger.balance(buyer) >= price {
            self.fault_stats.retries += 1;
            let jitter = self.rng.uniform_f64();
            let next_seller = self.pick_retry_seller(buyer, seller);
            let plan = self.fault_plan.as_mut().expect("plan present");
            let delay = plan.backoff(attempt, jitter) + plan.delivery_latency();
            self.begin_trade(buyer, next_seller, price, attempt + 1, delay, scheduler);
        } else {
            // The defection bankrupted the trade: no credits left to
            // re-buy with.
            self.denied += 1;
            self.fault_stats.note_conclusion(attempt);
        }
    }

    /// After a dropped attempt: schedule a retry against another
    /// seller, or refund the buyer's escrow once the retry budget is
    /// exhausted. The escrow stays withheld across retries — the
    /// credits are committed to the trade until it settles or refunds.
    fn retry_or_refund(
        &mut self,
        buyer: NodeId,
        failed_seller: NodeId,
        price: u64,
        attempt: u32,
        scheduler: &mut Scheduler<MarketEvent>,
    ) {
        let max_retries = self
            .fault_plan
            .as_ref()
            .expect("plan present")
            .spec()
            .max_retries;
        if attempt > max_retries {
            let slot = self.arena.slot(buyer).expect("buyer is live");
            self.in_flight[slot] -= price;
            self.in_flight_total -= price;
            let refunded = self.ledger.pay_from_escrow(buyer, price);
            debug_assert_eq!(refunded, price, "trade escrow funds the refund");
            self.fault_stats.refunded += 1;
            self.fault_stats.note_conclusion(attempt);
        } else {
            self.fault_stats.retries += 1;
            let jitter = self.rng.uniform_f64();
            let next_seller = self.pick_retry_seller(buyer, failed_seller);
            let plan = self.fault_plan.as_mut().expect("plan present");
            let delay = plan.backoff(attempt, jitter) + plan.delivery_latency();
            scheduler.schedule_after(
                delay,
                MarketEvent::Deliver {
                    buyer,
                    seller: next_seller,
                    price,
                    attempt: attempt + 1,
                },
            );
        }
    }

    /// Picks the next-best seller for a retry: the same routing as the
    /// original pick (complete mixing or neighbor-uniform), best-effort
    /// excluding the seller that just failed. Draws come from the
    /// global stream, in event-apply order, like every other model
    /// draw.
    fn pick_retry_seller(&mut self, buyer: NodeId, failed: NodeId) -> NodeId {
        if self.config.profile.complete_mixing() {
            let peers = self.arena.ids();
            // Bounded resampling: fall back to the failed seller when
            // the population offers no alternative (the retry then
            // fails again and eventually refunds).
            let mut pick = failed;
            for _ in 0..8 {
                let candidate = peers[self.rng.index(peers.len())];
                if candidate == buyer {
                    continue;
                }
                pick = candidate;
                if candidate != failed {
                    break;
                }
            }
            pick
        } else {
            let neighbors = match self.graph.neighbor_slice(buyer) {
                Some(n) if !n.is_empty() => n,
                _ => return failed,
            };
            let i = self.rng.index(neighbors.len());
            let pick = neighbors[i];
            if pick == failed && neighbors.len() > 1 {
                // Deterministic skip to the next neighbor.
                neighbors[(i + 1) % neighbors.len()]
            } else {
                pick
            }
        }
    }

    /// An injected crash: an unplanned departure. The crashed peer's
    /// in-flight escrow refunds into its wallet and the departure burn
    /// then takes the whole wallet out of circulation — identical
    /// accounting to a graceful leave, so conservation holds.
    fn handle_crash(&mut self, id: NodeId) {
        if !self.graph.has_node(id) {
            return; // already departed on its own
        }
        self.fault_stats.crashes += 1;
        self.handle_leave(id);
        assert!(
            self.ledger.conserved(),
            "crash recovery broke conservation (peer {id})"
        );
    }

    fn handle_join(&mut self, scheduler: &mut Scheduler<MarketEvent>) {
        let Some(churn) = self.config.churn else {
            return;
        };
        let new = self.churn_topology.join(&mut self.graph, &mut self.rng);
        self.ledger.mint(new, self.config.initial_credits);
        self.pricing.on_join(new, &mut self.rng);
        let rate = joiner_spending_rate(self.config.profile, self.config.base_rate, &mut self.rng);
        self.arena.insert(new);
        self.mu.push(rate);
        self.spent.push(0);
        self.activity.push((1.0, scheduler.now()));
        self.in_flight.push(0);
        self.schedule_spend(new, scheduler);
        let lifespan_delay = self.exp_delay(1.0 / churn.mean_lifespan);
        scheduler.schedule_after(lifespan_delay, MarketEvent::Leave(new));
        let arrival_delay = self.exp_delay(churn.arrival_rate);
        scheduler.schedule_after(arrival_delay, MarketEvent::Join);
        // Under a fault plan, every joiner rolls its crash die once, in
        // join order (event-apply order — deterministic at any shard
        // count).
        if let Some(plan) = self.fault_plan.as_mut() {
            if let Some(d) = plan.crash_delay(scheduler.now()) {
                scheduler.schedule_after(d, MarketEvent::Crash(new));
            }
        }
    }

    fn handle_leave(&mut self, id: NodeId) {
        if !self.graph.has_node(id) {
            return;
        }
        // Refund the departing peer's in-flight escrow into its wallet
        // first, so the departure burn below takes those credits out
        // of circulation instead of leaking them in escrow forever.
        // (Always zero when faults are off.)
        if let Some(slot) = self.arena.slot(id) {
            let holding = self.in_flight[slot];
            if holding > 0 {
                let refunded = self.ledger.pay_from_escrow(id, holding);
                debug_assert_eq!(refunded, holding, "escrow under-funded for {id}");
                self.in_flight[slot] = 0;
                self.in_flight_total -= holding;
                assert!(
                    self.ledger.conserved(),
                    "departure escrow refund broke conservation (peer {id})"
                );
            }
        }
        // The graph unlinks the departing peer from its neighbors
        // incrementally; no neighbor cache to rebuild.
        self.graph.remove_node(id).expect("checked live");
        self.ledger.burn_account(id);
        self.pricing.on_leave(id);
        let removal = self.arena.remove(id).expect("graph and arena agree");
        self.mu.swap_remove(removal.slot);
        // A departing peer takes its spending history with it, exactly
        // as `spent_per_peer()` (live peers only) always reported.
        self.total_spent -= self.spent[removal.slot];
        self.spent.swap_remove(removal.slot);
        self.activity.swap_remove(removal.slot);
        self.in_flight.swap_remove(removal.slot);
    }

    fn handle_sample(&mut self, now: SimTime, scheduler: &mut Scheduler<MarketEvent>) {
        // O(1): the ledger maintains the Gini online. (Kept bit-exact
        // with the sort-based oracle; the golden-trajectory tests pin
        // this, and debug builds re-check each sample.)
        let sampled = match self.ledger.tracked_gini() {
            Some(g) => Some(g),
            None => gini_u64(&self.ledger.balances_vec()).ok(),
        };
        if let Some(g) = sampled {
            debug_assert!(
                gini_u64(&self.ledger.balances_vec())
                    .map(|reference| (g - reference).abs() < 1e-9)
                    .unwrap_or(false),
                "online Gini drifted from the sort-based oracle"
            );
            self.gini_series.record(now, g);
        }
        scheduler.schedule_after(self.config.sample_interval, MarketEvent::Sample);
    }
}

impl Model for CreditMarket {
    type Event = MarketEvent;

    fn handle(&mut self, now: SimTime, event: MarketEvent, scheduler: &mut Scheduler<MarketEvent>) {
        match event {
            MarketEvent::Bootstrap => {
                if self.bootstrapped {
                    return;
                }
                self.bootstrapped = true;
                let ids: Vec<NodeId> = self.graph.node_ids().collect();
                // The queue population is known up front: one spend loop
                // per peer, the sampling chain, and (under churn) one
                // leave timer per peer plus the arrival process. Reserve
                // once so steady-state scheduling never reallocates.
                let churning = self.config.churn.is_some();
                scheduler.reserve(ids.len() * (1 + usize::from(churning)) + 2);
                for id in &ids {
                    self.schedule_spend(*id, scheduler);
                }
                scheduler.schedule_after(self.config.sample_interval, MarketEvent::Sample);
                if let Some(churn) = self.config.churn {
                    for &id in &ids {
                        let d = self.exp_delay(1.0 / churn.mean_lifespan);
                        scheduler.schedule_after(d, MarketEvent::Leave(id));
                    }
                    let d = self.exp_delay(churn.arrival_rate);
                    scheduler.schedule_after(d, MarketEvent::Join);
                }
                // Each initial peer rolls its crash die once, in
                // ascending-id order (the plan's documented bootstrap
                // order).
                if let Some(plan) = self.fault_plan.as_mut() {
                    for &id in &ids {
                        if let Some(d) = plan.crash_delay(now) {
                            scheduler.schedule_after(d, MarketEvent::Crash(id));
                        }
                    }
                }
            }
            MarketEvent::Spend(id) => self.handle_spend(id, now, scheduler),
            MarketEvent::Sample => self.handle_sample(now, scheduler),
            MarketEvent::Join => self.handle_join(scheduler),
            MarketEvent::Leave(id) => self.handle_leave(id),
            MarketEvent::Deliver {
                buyer,
                seller,
                price,
                attempt,
            } => self.handle_deliver(buyer, seller, price, attempt, now, scheduler),
            MarketEvent::Crash(id) => self.handle_crash(id),
        }
    }
}

/// Convenience runner: builds the market, simulates until `horizon`, and
/// returns the finished model.
#[doc = "\n\nPrefer [`crate::obs::Session`] for new code: it runs both market \
granularities behind one entry point and supports pluggable \
[`crate::obs::Probe`]s. This function is kept as a thin wrapper over a \
probe-less session (bit-identical results, zero overhead) so existing \
callers keep working."]
///
/// # Errors
/// Returns [`CoreError`] if market construction fails.
pub fn run_market(
    config: MarketConfig,
    seed: u64,
    horizon: SimTime,
) -> Result<CreditMarket, CoreError> {
    if config.streaming.is_some() {
        // Preserve CreditMarket::build's refusal without running the
        // chunk-level stack.
        return Err(CoreError::Config(
            "config selects a chunk-level streaming market; build it with \
             crate::protocol::run_streaming_market instead"
                .into(),
        ));
    }
    let mut session = crate::obs::Session::from_config(&config, seed)?;
    session.run_until(horizon);
    Ok(session
        .finish()
        .1
        .queue()
        .expect("queue-level config yields a queue-level model"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrip_des::Simulation;

    fn run(config: MarketConfig, seed: u64, secs: u64) -> CreditMarket {
        run_market(config, seed, SimTime::from_secs(secs)).expect("market runs")
    }

    #[test]
    fn config_validation() {
        assert!(CreditMarket::build(MarketConfig::new(1, 10), 0).is_err());
        assert!(CreditMarket::build(MarketConfig::new(10, 10).base_rate(0.0), 0).is_err());
        assert!(CreditMarket::build(
            MarketConfig::new(10, 10).sample_interval(SimDuration::ZERO),
            0
        )
        .is_err());
        assert!(ChurnConfig::new(0.0, 100.0, 5).is_err());
        assert!(ChurnConfig::new(1.0, 0.0, 5).is_err());
        assert!(ChurnConfig::new(1.0, 100.0, 0).is_err());
        assert!(
            (ChurnConfig::new(2.0, 500.0, 5)
                .expect("valid")
                .expected_size()
                - 1000.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn closed_market_conserves_credits() {
        let config = MarketConfig::new(50, 20).topology(TopologyKind::Complete);
        let market = run(config, 1, 500);
        assert_eq!(market.ledger().total(), 50 * 20);
        assert!(market.ledger().conserved());
        assert!(
            market.purchases() > 1_000,
            "purchases {}",
            market.purchases()
        );
    }

    #[test]
    fn gini_series_is_recorded_and_bounded() {
        let config = MarketConfig::new(40, 10).sample_interval(SimDuration::from_secs(50));
        let market = run(config, 2, 2_000);
        let series = market.gini_series();
        assert!(series.len() >= 30, "samples {}", series.len());
        for &(_, g) in series.samples() {
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn asymmetric_market_is_more_unequal_than_symmetric() {
        // The paper's central qualitative claim at equal average wealth.
        let horizon = 4_000;
        let sym = run(MarketConfig::new(60, 50).symmetric(), 3, horizon);
        let asym = run(MarketConfig::new(60, 50).asymmetric(), 3, horizon);
        let g_sym = sym.gini_series().tail_mean(5).expect("samples");
        let g_asym = asym.gini_series().tail_mean(5).expect("samples");
        assert!(
            g_asym > g_sym,
            "asymmetric Gini {g_asym} should exceed symmetric {g_sym}"
        );
    }

    #[test]
    fn taxation_reduces_inequality() {
        let base = MarketConfig::new(60, 50).asymmetric();
        let taxed = base.clone().tax(TaxConfig::new(0.2, 40).expect("valid"));
        let horizon = 4_000;
        let no_tax = run(base, 4, horizon);
        let with_tax = run(taxed, 4, horizon);
        let g_plain = no_tax.gini_series().tail_mean(5).expect("samples");
        let g_taxed = with_tax.gini_series().tail_mean(5).expect("samples");
        assert!(
            g_taxed < g_plain,
            "taxed Gini {g_taxed} should be below untaxed {g_plain}"
        );
        let tax = with_tax.taxation().expect("enabled");
        assert!(tax.collected > 0, "no tax collected");
        assert!(tax.redistributed <= tax.collected);
        assert!(with_tax.ledger().conserved());
    }

    #[test]
    fn dynamic_spending_reduces_inequality() {
        let base = MarketConfig::new(60, 50).asymmetric();
        let dynamic = base
            .clone()
            .spending(SpendingPolicy::Dynamic { threshold: 50 });
        let horizon = 4_000;
        let fixed = run(base, 5, horizon);
        let dyn_market = run(dynamic, 5, horizon);
        let g_fixed = fixed.gini_series().tail_mean(5).expect("samples");
        let g_dyn = dyn_market.gini_series().tail_mean(5).expect("samples");
        assert!(
            g_dyn < g_fixed,
            "dynamic-spending Gini {g_dyn} should be below fixed {g_fixed}"
        );
    }

    #[test]
    fn churn_market_stays_near_expected_size() {
        let churn = ChurnConfig::new(0.5, 200.0, 8).expect("valid"); // expected size 100
        let config = MarketConfig::new(100, 10)
            .churn(churn)
            .topology(TopologyKind::Complete)
            .sample_interval(SimDuration::from_secs(100));
        let market = run(config, 6, 3_000);
        let n = market.peer_count();
        assert!(
            (40..=220).contains(&n),
            "population drifted to {n}, expected ≈ 100"
        );
        assert!(market.ledger().conserved());
        assert!(market.ledger().burned() > 0, "departures burn credits");
        assert!(market.ledger().minted() > 100 * 10, "joiners mint credits");
    }

    #[test]
    fn spending_rates_sorted_is_monotone() {
        let market = run(MarketConfig::new(30, 10), 7, 1_000);
        let rates = market.spending_rates_sorted(SimTime::from_secs(1_000));
        assert_eq!(rates.len(), 30);
        for w in rates.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(rates.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn broke_market_denies_purchases() {
        // One credit per peer with prices ≥ 1: most attempts fail.
        let market = run(MarketConfig::new(30, 1), 8, 500);
        assert!(market.denied() > 0);
    }

    #[test]
    fn bootstrap_is_idempotent() {
        let market = CreditMarket::build(MarketConfig::new(20, 10), 9).expect("built");
        let mut sim = Simulation::new(market);
        sim.schedule(SimTime::ZERO, MarketEvent::Bootstrap);
        sim.schedule(SimTime::ZERO, MarketEvent::Bootstrap);
        sim.run_until(SimTime::from_secs(100));
        // Should not double-count: one Sample chain, one spend loop each.
        let samples = sim.model().gini_series().len();
        assert_eq!(samples, 1, "duplicate bootstrap doubled the sampling");
    }

    /// The zero-alloc claim for the spend loop, observed from the
    /// outside: every buffer the hot path touches (event heap, scratch
    /// weights, slot vectors) reaches a fixed capacity during warmup and
    /// never grows again, over tens of thousands of further events.
    /// (The workspace forbids `unsafe`, so a counting global allocator
    /// is out; `docs/ARCHITECTURE.md` documents the per-event allocation
    /// audit.)
    #[test]
    fn spend_loop_buffers_stop_growing_after_warmup() {
        let config = MarketConfig::new(40, 50)
            .asymmetric()
            .with_availability_feedback();
        let market = CreditMarket::build(config, 17).expect("built");
        let mut sim = Simulation::new(market);
        sim.schedule(SimTime::ZERO, MarketEvent::Bootstrap);
        sim.run_until(SimTime::from_secs(200)); // warmup (~8k events)
        let heap_cap = sim.scheduler().capacity();
        let scratch_cap = sim.model().seller_sampler.capacity();
        let events_before = sim.stats().events_processed;
        sim.run_until(SimTime::from_secs(2_200));
        assert!(
            sim.stats().events_processed > events_before + 50_000,
            "workload too small to be meaningful: {} events",
            sim.stats().events_processed
        );
        assert_eq!(
            sim.scheduler().capacity(),
            heap_cap,
            "event heap grew during steady-state spending"
        );
        assert_eq!(
            sim.model().seller_sampler.capacity(),
            scratch_cap,
            "availability-feedback seller sampler grew during steady state"
        );
        assert!(scratch_cap > 0, "seller sampler was exercised");
    }

    /// The steady-state claim on the timing-wheel backend the runners
    /// select via `queue_profile()`. Exponential spend delays have
    /// unbounded tails, so a bucket vector can always meet a
    /// first-ever occupancy high-water mark — exact capacity equality
    /// (the heap backend's guarantee above) is unattainable. The honest
    /// wheel invariant is that the amortized allocation rate decays to
    /// zero: across tens of thousands of post-warmup events, total
    /// wheel storage grows by at most a few percent, and a second
    /// equally long window grows strictly less than the first.
    #[test]
    fn wheel_backed_spend_loop_stops_growing_after_warmup() {
        let config = MarketConfig::new(40, 50)
            .asymmetric()
            .with_availability_feedback();
        let market = CreditMarket::build(config, 17).expect("built");
        let profile = market.queue_profile();
        assert!(matches!(profile, scrip_des::QueueProfile::Wheel { .. }));
        let mut sim = Simulation::with_profile(market, profile);
        sim.schedule(SimTime::ZERO, MarketEvent::Bootstrap);
        sim.run_until(SimTime::from_secs(1_200)); // warmup: many wheel revolutions
        let warm_cap = sim.scheduler().capacity();
        let events_before = sim.stats().events_processed;
        sim.run_until(SimTime::from_secs(3_200));
        let mid_cap = sim.scheduler().capacity();
        sim.run_until(SimTime::from_secs(5_200));
        let end_cap = sim.scheduler().capacity();
        assert!(
            sim.stats().events_processed > events_before + 100_000,
            "workload too small to be meaningful: {} events",
            sim.stats().events_processed
        );
        assert!(
            end_cap <= warm_cap + warm_cap / 10,
            "wheel storage grew more than 10% after warmup: {warm_cap} -> {end_cap}"
        );
        assert!(
            end_cap - mid_cap <= mid_cap - warm_cap,
            "wheel allocation rate is not decaying: \
             {warm_cap} -> {mid_cap} -> {end_cap}"
        );
    }

    /// The arena layout audit's budget: flat per-peer market state
    /// (slot maps, wallets, prices, rates, counters, activity traces)
    /// stays within ≈100–150 B/peer at a population large enough that
    /// constant overheads vanish. Adjacency (≈ 8 B × degree) and
    /// population-independent scratch are accounted — and bounded —
    /// separately.
    #[test]
    fn arena_layout_stays_within_per_peer_budget() {
        let config = MarketConfig::new(10_000, 50)
            .asymmetric()
            .with_availability_feedback();
        let market = run(config, 42, 200);
        let audit = market.memory_audit();
        assert_eq!(audit.peers, 10_000);
        let per_peer = audit.state_bytes_per_peer();
        assert!(
            (40..=150).contains(&per_peer),
            "per-peer state out of budget: {per_peer} B/peer ({audit:?})"
        );
        // Adjacency dominates at ~8 B × degree + row headers; make sure
        // nothing quadratic snuck in.
        let adjacency_per_peer = audit.adjacency_bytes / audit.peers;
        assert!(
            adjacency_per_peer <= 16 * 50 + 64,
            "adjacency out of budget: {adjacency_per_peer} B/peer"
        );
        // Fixed costs (sampler scratch, wealth histogram, sample
        // series) are sized by max degree / max wealth / horizon, not
        // the population — a few MB here regardless of n. An absolute
        // cap catches anything that started scaling with n².
        assert!(
            audit.fixed_bytes < 16 << 20,
            "fixed costs blew up: {audit:?}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(MarketConfig::new(40, 20), 10, 1_000);
        let b = run(MarketConfig::new(40, 20), 10, 1_000);
        assert_eq!(a.ledger().balances_vec(), b.ledger().balances_vec());
        assert_eq!(a.gini_series(), b.gini_series());
        let c = run(MarketConfig::new(40, 20), 11, 1_000);
        assert_ne!(a.ledger().balances_vec(), c.ledger().balances_vec());
    }

    #[test]
    fn zero_rate_fault_spec_is_byte_identical_to_none() {
        // An all-zero spec must not even build the plan: trajectories
        // match a fault-free run bit for bit.
        let base = MarketConfig::new(40, 20);
        let zeroed = base.clone().faults(FaultSpec::default());
        let a = run(base, 10, 1_000);
        let b = run(zeroed, 10, 1_000);
        assert!(!b.faults_enabled());
        assert_eq!(a.ledger().balances_vec(), b.ledger().balances_vec());
        assert_eq!(a.gini_series(), b.gini_series());
        assert_eq!(a.purchases(), b.purchases());
        assert_eq!(b.fault_stats(), &FaultStats::default());
    }

    #[test]
    fn faulty_market_recovers_and_conserves() {
        let spec = FaultSpec {
            drop_rate: 0.10,
            defect_rate: 0.05,
            delay_rate: 0.05,
            crash_fraction: 0.10,
            onset: SimTime::from_secs(50),
            ..FaultSpec::default()
        };
        let config = MarketConfig::new(50, 30)
            .topology(TopologyKind::Complete)
            .faults(spec);
        let market = run(config, 14, 2_000);
        assert!(market.faults_enabled());
        let stats = market.fault_stats();
        assert!(stats.delivered > 100, "delivered {}", stats.delivered);
        assert!(stats.dropped > 0, "no drops injected");
        assert!(stats.defected > 0, "no defections injected");
        assert!(stats.delayed > 0, "no delays injected");
        assert!(stats.retries > 0, "failures never retried");
        assert!(stats.crashes > 0, "no crashes fired");
        assert!(market.ledger().conserved());
        // Per-trade escrow is a sub-pool of the ledger's total escrow
        // (which also holds unredistributed tax).
        assert!(market.in_flight_escrow() <= market.ledger().escrow());
        assert!(
            !stats.retry_depth.is_empty()
                && stats.retry_depth.iter().sum::<u64>() >= stats.delivered,
            "conclusion histogram inconsistent: {:?}",
            stats.retry_depth
        );
        assert_eq!(market.purchases(), stats.delivered);
    }

    #[test]
    fn faults_compose_with_churn_and_tax() {
        let spec = FaultSpec {
            drop_rate: 0.15,
            defect_rate: 0.05,
            crash_fraction: 0.2,
            ..FaultSpec::default()
        };
        let churn = ChurnConfig::new(0.5, 200.0, 8).expect("valid");
        let config = MarketConfig::new(100, 30)
            .churn(churn)
            .tax(TaxConfig::new(0.2, 25).expect("valid"))
            .topology(TopologyKind::Complete)
            .faults(spec);
        let market = run(config, 15, 2_000);
        let stats = market.fault_stats();
        assert!(stats.delivered > 0);
        assert!(stats.crashes > 0, "crash fraction 0.2 never fired");
        assert!(market.ledger().conserved());
        assert!(market.ledger().burned() > 0, "departures burn credits");
    }

    #[test]
    fn faulty_runs_are_deterministic_given_seed() {
        let spec = FaultSpec {
            drop_rate: 0.2,
            defect_rate: 0.1,
            delay_rate: 0.1,
            crash_fraction: 0.1,
            ..FaultSpec::default()
        };
        let config = MarketConfig::new(40, 20).faults(spec);
        let a = run(config.clone(), 16, 1_000);
        let b = run(config.clone(), 16, 1_000);
        assert_eq!(a.ledger().balances_vec(), b.ledger().balances_vec());
        assert_eq!(a.fault_stats(), b.fault_stats());
        assert_eq!(a.gini_series(), b.gini_series());
        let c = run(config, 17, 1_000);
        assert_ne!(a.ledger().balances_vec(), c.ledger().balances_vec());
    }

    #[test]
    fn ring_and_regular_topologies_run() {
        let ring = run(
            MarketConfig::new(20, 5).topology(TopologyKind::Ring),
            12,
            200,
        );
        assert_eq!(ring.peer_count(), 20);
        let reg = run(
            MarketConfig::new(20, 5).topology(TopologyKind::Regular(4)),
            13,
            200,
        );
        assert_eq!(reg.peer_count(), 20);
    }
}

//! The protocol-level credit market: credits gating a real streaming
//! swarm (the configuration behind the paper's Fig. 1).
//!
//! [`CreditTradePolicy`] implements [`scrip_streaming::TradePolicy`]:
//! every peer-to-peer chunk transfer is authorized against the buyer's
//! wallet and settled by transferring the seller's quoted price, with
//! optional income taxation. [`StreamingMarket`] bundles policy and
//! protocol into a runnable simulation.

use std::collections::BTreeMap;

use scrip_des::{SimRng, SimTime, Simulation};
use scrip_streaming::{StreamEvent, StreamingConfig, StreamingSystem, TradePolicy};
use scrip_topology::{Graph, NodeId};

use crate::credits::Ledger;
use crate::error::CoreError;
use crate::policy::{TaxConfig, Taxation};
use crate::pricing::{PricingConfig, PricingModel};

/// A credit market attached to the streaming protocol.
///
/// Authorization refuses a purchase when the buyer cannot afford the
/// seller's quoted price for that chunk — the mechanism by which wealth
/// condensation starves poor peers of content (paper Sec. III-A).
/// Settlement happens on delivery; because the wallet may have shrunk in
/// flight, the payment is capped at the buyer's balance and the
/// shortfall counted.
#[derive(Clone, Debug)]
pub struct CreditTradePolicy {
    ledger: Ledger,
    pricing: PricingModel,
    taxation: Option<Taxation>,
    rng: SimRng,
    spent: BTreeMap<NodeId, u64>,
    earned: BTreeMap<NodeId, u64>,
    /// Purchases refused at authorization time.
    pub denials: u64,
    /// Settlements completed.
    pub settlements: u64,
    /// Settlements where the buyer could no longer pay the full price.
    pub shortfalls: u64,
    /// Credits paid to the source (all recycled back to peers).
    pub source_income: u64,
    source_price: u64,
}

impl CreditTradePolicy {
    /// Creates the policy: every peer in `peers` gets
    /// `initial_credits`, and prices follow `pricing`.
    ///
    /// # Errors
    /// Returns [`CoreError::Config`] for invalid pricing parameters.
    pub fn new(
        peers: &[NodeId],
        initial_credits: u64,
        pricing: PricingConfig,
        tax: Option<TaxConfig>,
        seed: u64,
    ) -> Result<Self, CoreError> {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut ledger = Ledger::new();
        for &p in peers {
            ledger.mint(p, initial_credits);
        }
        let pricing = PricingModel::realize(pricing, peers, &mut rng)?;
        let source_price = (pricing.mean_price().round() as u64).max(1);
        Ok(CreditTradePolicy {
            ledger,
            pricing,
            taxation: tax.map(Taxation::new),
            rng,
            spent: peers.iter().map(|&p| (p, 0)).collect(),
            earned: peers.iter().map(|&p| (p, 0)).collect(),
            denials: 0,
            settlements: 0,
            shortfalls: 0,
            source_income: 0,
            source_price,
        })
    }

    /// Pays one credit from escrow to every peer while the escrow can
    /// cover the whole population (the recycling rule shared by source
    /// income and taxation).
    fn redistribute_escrow(&mut self) -> u64 {
        let live = self.ledger.accounts() as u64;
        let mut total_paid = 0;
        while live > 0 && self.ledger.escrow() >= live {
            let paid = self.ledger.pay_each_from_escrow(1);
            total_paid += paid;
            if paid == 0 {
                break;
            }
        }
        total_paid
    }

    /// The ledger (read access for reports).
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The realized pricing model.
    pub fn pricing(&self) -> &PricingModel {
        &self.pricing
    }

    /// Taxation state, when enabled.
    pub fn taxation(&self) -> Option<&Taxation> {
        self.taxation.as_ref()
    }

    /// Credits spent per peer.
    pub fn spent(&self) -> &BTreeMap<NodeId, u64> {
        &self.spent
    }

    /// Credits earned per peer.
    pub fn earned(&self) -> &BTreeMap<NodeId, u64> {
        &self.earned
    }

    /// Per-peer credit spending rates over `[0, now]`, sorted ascending —
    /// the series of the paper's Fig. 1.
    pub fn spending_rates_sorted(&self, now: SimTime) -> Vec<f64> {
        let elapsed = now.as_secs_f64().max(1e-9);
        let mut rates: Vec<f64> = self.spent.values().map(|&s| s as f64 / elapsed).collect();
        rates.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
        rates
    }
}

impl TradePolicy for CreditTradePolicy {
    fn authorize(&mut self, buyer: NodeId, seller: NodeId, chunk: u64, _now: SimTime) -> bool {
        let price = self.pricing.price(seller, chunk);
        if self.ledger.balance(buyer) >= price {
            true
        } else {
            self.denials += 1;
            false
        }
    }

    fn settle(&mut self, buyer: NodeId, seller: NodeId, chunk: u64, _now: SimTime) {
        let price = self.pricing.price(seller, chunk);
        let afford = self.ledger.balance(buyer).min(price);
        if afford < price {
            self.shortfalls += 1;
        }
        if afford > 0 && self.ledger.transfer(buyer, seller, afford).is_ok() {
            *self.spent.entry(buyer).or_insert(0) += afford;
            *self.earned.entry(seller).or_insert(0) += afford;
            if let Some(tax) = &mut self.taxation {
                let wealth = self.ledger.balance(seller);
                let due = tax.assess(afford, wealth, &mut self.rng);
                if due > 0 {
                    let withheld = self.ledger.withhold_to_escrow(seller, due);
                    tax.record_collection(withheld);
                }
            }
            // Tax revenue and source income share the escrow; the
            // recycled total is tracked on the taxation side when
            // enabled (it upper-bounds collected + source_income).
            let paid = self.redistribute_escrow();
            if let Some(tax) = &mut self.taxation {
                tax.record_redistribution(paid);
            }
        }
        self.settlements += 1;
    }

    fn authorize_source(&mut self, buyer: NodeId, _chunk: u64, _now: SimTime) -> bool {
        if self.ledger.balance(buyer) >= self.source_price {
            true
        } else {
            self.denials += 1;
            false
        }
    }

    fn settle_source(&mut self, buyer: NodeId, _chunk: u64, _now: SimTime) {
        // The operator charges the same (floor) price as peers and its
        // income is recycled uniformly — the source is neither a credit
        // source nor a sink, keeping the economy closed as in the
        // paper's model.
        let paid = self.ledger.withhold_to_escrow(buyer, self.source_price);
        if paid < self.source_price {
            self.shortfalls += 1;
        }
        *self.spent.entry(buyer).or_insert(0) += paid;
        self.source_income += paid;
        self.redistribute_escrow();
    }
}

/// Builder bundling overlay + streaming protocol + credit market into a
/// runnable simulation (the paper's full experimental stack).
#[derive(Clone, Debug)]
pub struct StreamingMarket {
    /// Initial credits per peer (the paper's `c`).
    pub initial_credits: u64,
    /// Pricing scheme.
    pub pricing: PricingConfig,
    /// Optional income taxation.
    pub tax: Option<TaxConfig>,
    /// Streaming protocol parameters.
    pub streaming: StreamingConfig,
}

impl StreamingMarket {
    /// A streaming market with the paper's defaults: uniform 1-credit
    /// pricing and no taxation.
    pub fn new(initial_credits: u64) -> Self {
        StreamingMarket {
            initial_credits,
            pricing: PricingConfig::default(),
            tax: None,
            streaming: StreamingConfig::default(),
        }
    }

    /// Sets the pricing scheme.
    pub fn pricing(mut self, pricing: PricingConfig) -> Self {
        self.pricing = pricing;
        self
    }

    /// Enables taxation.
    pub fn tax(mut self, tax: TaxConfig) -> Self {
        self.tax = Some(tax);
        self
    }

    /// Overrides the streaming protocol configuration.
    pub fn streaming(mut self, config: StreamingConfig) -> Self {
        self.streaming = config;
        self
    }

    /// Builds the combined system over `graph`.
    ///
    /// # Errors
    /// Returns [`CoreError::Config`] if either layer's configuration is
    /// invalid.
    pub fn build(
        self,
        graph: Graph,
        seed: u64,
    ) -> Result<StreamingSystem<CreditTradePolicy>, CoreError> {
        let peers: Vec<NodeId> = graph.node_ids().collect();
        let policy =
            CreditTradePolicy::new(&peers, self.initial_credits, self.pricing, self.tax, seed)?;
        let rng = SimRng::seed_from_u64(seed.wrapping_add(0x5EED));
        StreamingSystem::new(graph, self.streaming, policy, rng).map_err(CoreError::Config)
    }

    /// Builds and runs the combined system until `horizon`, returning
    /// the finished system for inspection.
    ///
    /// # Errors
    /// Returns [`CoreError::Config`] if construction fails.
    pub fn run(
        self,
        graph: Graph,
        seed: u64,
        horizon: SimTime,
    ) -> Result<StreamingSystem<CreditTradePolicy>, CoreError> {
        let system = self.build(graph, seed)?;
        let mut sim = Simulation::new(system);
        sim.schedule(SimTime::ZERO, StreamEvent::Bootstrap);
        sim.run_until(horizon);
        Ok(sim.into_model())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scrip_topology::generators::{self, ScaleFreeConfig};

    fn graph(n: usize, seed: u64) -> Graph {
        let mut rng = SimRng::seed_from_u64(seed);
        generators::scale_free(&ScaleFreeConfig::new(n).expect("cfg"), &mut rng).expect("graph")
    }

    #[test]
    fn policy_authorizes_by_wallet() {
        let peers: Vec<NodeId> = (0..2).map(NodeId::from_raw).collect();
        let mut p = CreditTradePolicy::new(&peers, 1, PricingConfig::Uniform { price: 2 }, None, 1)
            .expect("policy");
        // Wallet 1 < price 2: denied.
        assert!(!p.authorize(peers[0], peers[1], 0, SimTime::ZERO));
        assert_eq!(p.denials, 1);
        let mut rich =
            CreditTradePolicy::new(&peers, 10, PricingConfig::Uniform { price: 2 }, None, 1)
                .expect("policy");
        assert!(rich.authorize(peers[0], peers[1], 0, SimTime::ZERO));
    }

    #[test]
    fn settle_moves_credits_and_caps_at_balance() {
        let peers: Vec<NodeId> = (0..2).map(NodeId::from_raw).collect();
        let mut p = CreditTradePolicy::new(&peers, 3, PricingConfig::Uniform { price: 2 }, None, 2)
            .expect("policy");
        p.settle(peers[0], peers[1], 0, SimTime::ZERO);
        assert_eq!(p.ledger().balance(peers[0]), 1);
        assert_eq!(p.ledger().balance(peers[1]), 5);
        assert_eq!(p.shortfalls, 0);
        // Second settle: buyer has 1 < 2, pays what it can.
        p.settle(peers[0], peers[1], 1, SimTime::ZERO);
        assert_eq!(p.ledger().balance(peers[0]), 0);
        assert_eq!(p.ledger().balance(peers[1]), 6);
        assert_eq!(p.shortfalls, 1);
        assert_eq!(p.settlements, 2);
        assert!(p.ledger().conserved());
    }

    #[test]
    fn streaming_market_runs_and_conserves_credits() {
        let g = graph(50, 3);
        let n = g.node_count() as u64;
        let system = StreamingMarket::new(50)
            .run(g, 7, SimTime::from_secs(120))
            .expect("runs");
        let policy = system.policy();
        // All credits remain in wallets + escrow (the source recycles its
        // income instead of sinking it).
        assert_eq!(policy.ledger().total() + policy.ledger().escrow(), n * 50);
        assert!(policy.ledger().conserved());
        assert!(
            policy.settlements > 100,
            "settlements {}",
            policy.settlements
        );
        // Streaming still works under ample credits.
        let report = system.report(SimTime::from_secs(120));
        assert!(
            report.mean_continuity > 0.5,
            "continuity {}",
            report.mean_continuity
        );
    }

    #[test]
    fn poor_swarm_suffers_more_denials_than_rich() {
        // A ~1 chunk/sec economy (the paper's Fig. 1 regime, where peer
        // spending rates are ~1 credit/sec).
        let streaming = StreamingConfig::market_paced(1.0);
        let g = graph(50, 4);
        let rich = StreamingMarket::new(100)
            .streaming(streaming.clone())
            .run(g.clone(), 8, SimTime::from_secs(240))
            .expect("runs");
        let poor = StreamingMarket::new(1)
            .streaming(streaming)
            .pricing(PricingConfig::Uniform { price: 3 })
            .run(g, 8, SimTime::from_secs(240))
            .expect("runs");
        assert!(
            poor.policy().denials > 2 * rich.policy().denials.max(1),
            "poor swarm denials {} vs rich {}",
            poor.policy().denials,
            rich.policy().denials
        );
        // And its streaming quality is visibly worse (broke peers cannot
        // even start playback, so compare download rates).
        let rich_report = rich.report(SimTime::from_secs(240));
        let poor_report = poor.report(SimTime::from_secs(240));
        assert!(
            poor_report.mean_download_rate < 0.5 * rich_report.mean_download_rate,
            "poor dl {} vs rich dl {}",
            poor_report.mean_download_rate,
            rich_report.mean_download_rate
        );
    }

    #[test]
    fn taxation_collects_in_streaming_market() {
        let g = graph(40, 5);
        let system = StreamingMarket::new(60)
            .tax(TaxConfig::new(0.2, 30).expect("valid"))
            .run(g, 9, SimTime::from_secs(150))
            .expect("runs");
        let tax = system.policy().taxation().expect("enabled");
        assert!(tax.collected > 0, "no tax collected");
        assert!(system.policy().ledger().conserved());
    }

    #[test]
    fn spending_rates_sorted_monotone() {
        let g = graph(30, 6);
        let system = StreamingMarket::new(30)
            .run(g, 10, SimTime::from_secs(60))
            .expect("runs");
        let rates = system
            .policy()
            .spending_rates_sorted(SimTime::from_secs(60));
        assert_eq!(rates.len(), 30);
        for w in rates.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }
}

//! The protocol-level credit market: credits gating a real streaming
//! swarm (the configuration behind the paper's Fig. 1).
//!
//! [`CreditTradePolicy`] implements [`scrip_streaming::TradePolicy`]:
//! every peer-to-peer chunk transfer is authorized against the buyer's
//! wallet and settled by transferring the seller's quoted price, with
//! optional income taxation. All per-peer accounting is slot-indexed
//! through a [`PeerArena`] and the ledger maintains its wealth Gini
//! online, so a settlement on the chunk-trade hot path is
//! allocation-free (see the "Performance model" section of
//! `docs/ARCHITECTURE.md`).
//!
//! Two entry points build the combined system:
//!
//! * [`StreamingMarket`] — the ergonomic builder for hand-constructed
//!   experiments (bring your own [`Graph`]);
//! * [`build_streaming_market`] / [`run_streaming_market`] — the
//!   declarative path: realize a [`MarketConfig`] whose
//!   [`MarketConfig::streaming`] is set (topology, credits, pricing,
//!   taxation, churn, and Gini sampling all wired through), which is
//!   what the scenario engine and `scrip-sim` call.

use std::collections::BTreeMap;

use scrip_des::stats::TimeSeries;
use scrip_des::{FaultSpec, SimRng, SimTime, Simulation};
use scrip_streaming::{StreamEvent, StreamingChurn, StreamingConfig, StreamingSystem, TradePolicy};
use scrip_topology::{Graph, NodeId, PeerArena};

use crate::credits::Ledger;
use crate::error::CoreError;
use crate::market::MarketConfig;
use crate::policy::{TaxConfig, Taxation};
use crate::pricing::{PricingConfig, PricingModel};

/// A credit market attached to the streaming protocol.
///
/// Authorization refuses a purchase when the buyer cannot afford the
/// seller's quoted price for that chunk — the mechanism by which wealth
/// condensation starves poor peers of content (paper Sec. III-A).
/// Settlement happens on delivery; because the wallet may have shrunk in
/// flight, the payment is capped at the buyer's balance and the
/// shortfall counted.
#[derive(Clone, Debug)]
pub struct CreditTradePolicy {
    ledger: Ledger,
    pricing: PricingModel,
    taxation: Option<Taxation>,
    rng: SimRng,
    /// Live peers; `spent`/`earned` below are slot-indexed through it.
    arena: PeerArena,
    /// Credits spent per peer (slot-indexed).
    spent: Vec<u64>,
    /// Σ `spent` over live peers, maintained incrementally (bumped per
    /// settlement, reduced on departure) so
    /// [`CreditTradePolicy::total_spent`] is O(1).
    total_spent: u64,
    /// Credits earned per peer (slot-indexed).
    earned: Vec<u64>,
    /// Wallet endowment for churn joiners (the paper's `c`).
    initial_credits: u64,
    /// `(t, wealth Gini)` samples recorded by [`TradePolicy::sample`].
    gini_series: TimeSeries,
    /// Purchases refused at authorization time.
    pub denials: u64,
    /// Settlements completed.
    pub settlements: u64,
    /// Settlements where the buyer could no longer pay the full price.
    pub shortfalls: u64,
    /// Credits paid to the source (all recycled back to peers).
    pub source_income: u64,
    source_price: u64,
}

impl CreditTradePolicy {
    /// Creates the policy: every peer in `peers` gets
    /// `initial_credits`, and prices follow `pricing`. The ledger's
    /// online Gini accumulator is enabled, so samples are O(1).
    ///
    /// # Errors
    /// Returns [`CoreError::Config`] for invalid pricing parameters.
    pub fn new(
        peers: &[NodeId],
        initial_credits: u64,
        pricing: PricingConfig,
        tax: Option<TaxConfig>,
        seed: u64,
    ) -> Result<Self, CoreError> {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut ledger = Ledger::new();
        for &p in peers {
            ledger.mint(p, initial_credits);
        }
        ledger.enable_wealth_tracking();
        let pricing = PricingModel::realize(pricing, peers, &mut rng)?;
        let source_price = (pricing.mean_price().round() as u64).max(1);
        Ok(CreditTradePolicy {
            ledger,
            pricing,
            taxation: tax.map(Taxation::new),
            rng,
            arena: PeerArena::from_ids(peers),
            spent: vec![0; peers.len()],
            total_spent: 0,
            earned: vec![0; peers.len()],
            initial_credits,
            gini_series: TimeSeries::new(),
            denials: 0,
            settlements: 0,
            shortfalls: 0,
            source_income: 0,
            source_price,
        })
    }

    /// Pays one credit from escrow to every peer while the escrow can
    /// cover the whole population (the recycling rule shared by source
    /// income and taxation).
    fn redistribute_escrow(&mut self) -> u64 {
        let live = self.ledger.accounts() as u64;
        let mut total_paid = 0;
        while live > 0 && self.ledger.escrow() >= live {
            let paid = self.ledger.pay_each_from_escrow(1);
            total_paid += paid;
            if paid == 0 {
                break;
            }
        }
        total_paid
    }

    /// The ledger (read access for reports).
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The realized pricing model.
    pub fn pricing(&self) -> &PricingModel {
        &self.pricing
    }

    /// Taxation state, when enabled.
    pub fn taxation(&self) -> Option<&Taxation> {
        self.taxation.as_ref()
    }

    /// Credits spent per live peer (assembled on demand; the hot path
    /// uses the slot-indexed arena).
    pub fn spent(&self) -> BTreeMap<NodeId, u64> {
        self.arena
            .ids()
            .iter()
            .zip(&self.spent)
            .map(|(&id, &s)| (id, s))
            .collect()
    }

    /// Total credits spent by live peers. O(1): maintained incrementally
    /// alongside the per-peer counters (equal to
    /// `spent().values().sum()`, without assembling the map).
    pub fn total_spent(&self) -> u64 {
        self.total_spent
    }

    /// Credits earned per live peer (assembled on demand).
    pub fn earned(&self) -> BTreeMap<NodeId, u64> {
        self.arena
            .ids()
            .iter()
            .zip(&self.earned)
            .map(|(&id, &e)| (id, e))
            .collect()
    }

    /// The recorded `(t, wealth Gini)` trajectory — one sample per
    /// [`StreamEvent::Sample`] tick.
    pub fn gini_series(&self) -> &TimeSeries {
        &self.gini_series
    }

    /// Gini index of the current wealth distribution. O(1): read from
    /// the ledger's online accumulator.
    ///
    /// # Errors
    /// Returns [`CoreError::Econ`] if the market has no peers.
    pub fn wealth_gini(&self) -> Result<f64, CoreError> {
        match self.ledger.tracked_gini() {
            Some(g) => Ok(g),
            None => Ok(scrip_econ::gini_u64(&self.ledger.balances_vec())?),
        }
    }

    /// Current balances sorted ascending.
    pub fn balances_sorted(&self) -> Vec<u64> {
        let mut v = self.ledger.balances_vec();
        v.sort_unstable();
        v
    }

    /// Per-peer credit spending rates over `[0, now]`, sorted ascending —
    /// the series of the paper's Fig. 1.
    pub fn spending_rates_sorted(&self, now: SimTime) -> Vec<f64> {
        let elapsed = now.as_secs_f64().max(1e-9);
        let mut rates: Vec<f64> = self.spent.iter().map(|&s| s as f64 / elapsed).collect();
        rates.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
        rates
    }
}

impl TradePolicy for CreditTradePolicy {
    fn authorize(&mut self, buyer: NodeId, seller: NodeId, chunk: u64, _now: SimTime) -> bool {
        let price = self.pricing.price(seller, chunk);
        if self.ledger.balance(buyer) >= price {
            true
        } else {
            self.denials += 1;
            false
        }
    }

    fn settle(&mut self, buyer: NodeId, seller: NodeId, chunk: u64, _now: SimTime) {
        let price = self.pricing.price(seller, chunk);
        let afford = self.ledger.balance(buyer).min(price);
        if afford < price {
            self.shortfalls += 1;
        }
        if afford > 0 && self.ledger.transfer(buyer, seller, afford).is_ok() {
            // The transfer succeeded, so both accounts are live and
            // slotted (the seller could have departed mid-flight, in
            // which case the transfer above already refused).
            if let Some(slot) = self.arena.slot(buyer) {
                self.spent[slot] += afford;
                self.total_spent += afford;
            }
            if let Some(slot) = self.arena.slot(seller) {
                self.earned[slot] += afford;
            }
            if let Some(tax) = &mut self.taxation {
                let wealth = self.ledger.balance(seller);
                let due = tax.assess(afford, wealth, &mut self.rng);
                if due > 0 {
                    let withheld = self.ledger.withhold_to_escrow(seller, due);
                    tax.record_collection(withheld);
                }
            }
            // Tax revenue and source income share the escrow; the
            // recycled total is tracked on the taxation side when
            // enabled (it upper-bounds collected + source_income).
            let paid = self.redistribute_escrow();
            if let Some(tax) = &mut self.taxation {
                tax.record_redistribution(paid);
            }
        }
        self.settlements += 1;
    }

    fn authorize_source(&mut self, buyer: NodeId, _chunk: u64, _now: SimTime) -> bool {
        if self.ledger.balance(buyer) >= self.source_price {
            true
        } else {
            self.denials += 1;
            false
        }
    }

    fn settle_source(&mut self, buyer: NodeId, _chunk: u64, _now: SimTime) {
        // The operator charges the same (floor) price as peers and its
        // income is recycled uniformly — the source is neither a credit
        // source nor a sink, keeping the economy closed as in the
        // paper's model.
        let paid = self.ledger.withhold_to_escrow(buyer, self.source_price);
        if paid < self.source_price {
            self.shortfalls += 1;
        }
        if let Some(slot) = self.arena.slot(buyer) {
            self.spent[slot] += paid;
            self.total_spent += paid;
        }
        self.source_income += paid;
        self.redistribute_escrow();
    }

    fn on_join(&mut self, peer: NodeId, _now: SimTime) {
        self.ledger.mint(peer, self.initial_credits);
        self.pricing.on_join(peer, &mut self.rng);
        self.arena.insert(peer);
        self.spent.push(0);
        self.earned.push(0);
    }

    fn on_leave(&mut self, peer: NodeId, _now: SimTime) {
        self.ledger.burn_account(peer);
        self.pricing.on_leave(peer);
        if let Some(removal) = self.arena.remove(peer) {
            // A departing peer takes its spending history with it,
            // exactly as `spent()` (live peers only) always reported.
            self.total_spent -= self.spent[removal.slot];
            self.spent.swap_remove(removal.slot);
            self.earned.swap_remove(removal.slot);
        }
    }

    fn sample(&mut self, now: SimTime) {
        if let Some(gini) = self.ledger.tracked_gini() {
            self.gini_series.record(now, gini);
        }
    }
}

/// Builder bundling overlay + streaming protocol + credit market into a
/// runnable simulation (the paper's full experimental stack).
#[derive(Clone, Debug)]
pub struct StreamingMarket {
    /// Initial credits per peer (the paper's `c`).
    pub initial_credits: u64,
    /// Pricing scheme.
    pub pricing: PricingConfig,
    /// Optional income taxation.
    pub tax: Option<TaxConfig>,
    /// Streaming protocol parameters.
    pub streaming: StreamingConfig,
    /// Optional deterministic fault injection (dropped/defected/delayed
    /// chunk deliveries, peer crashes) — see
    /// [`StreamingSystem::with_faults`] for the chunk-level semantics.
    pub faults: Option<FaultSpec>,
}

impl StreamingMarket {
    /// A streaming market with the paper's defaults: uniform 1-credit
    /// pricing and no taxation.
    pub fn new(initial_credits: u64) -> Self {
        StreamingMarket {
            initial_credits,
            pricing: PricingConfig::default(),
            tax: None,
            streaming: StreamingConfig::default(),
            faults: None,
        }
    }

    /// Sets the pricing scheme.
    pub fn pricing(mut self, pricing: PricingConfig) -> Self {
        self.pricing = pricing;
        self
    }

    /// Enables taxation.
    pub fn tax(mut self, tax: TaxConfig) -> Self {
        self.tax = Some(tax);
        self
    }

    /// Overrides the streaming protocol configuration.
    pub fn streaming(mut self, config: StreamingConfig) -> Self {
        self.streaming = config;
        self
    }

    /// Enables deterministic fault injection on the chunk-transfer
    /// layer (see [`StreamingSystem::with_faults`]).
    pub fn faults(mut self, faults: FaultSpec) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Builds the combined system over `graph`.
    ///
    /// # Errors
    /// Returns [`CoreError::Config`] if either layer's configuration is
    /// invalid.
    pub fn build(
        self,
        graph: Graph,
        seed: u64,
    ) -> Result<StreamingSystem<CreditTradePolicy>, CoreError> {
        let peers: Vec<NodeId> = graph.node_ids().collect();
        let policy =
            CreditTradePolicy::new(&peers, self.initial_credits, self.pricing, self.tax, seed)?;
        let rng = SimRng::seed_from_u64(seed.wrapping_add(0x5EED));
        let system =
            StreamingSystem::new(graph, self.streaming, policy, rng).map_err(CoreError::Config)?;
        match self.faults {
            Some(spec) => system.with_faults(spec, seed).map_err(CoreError::Config),
            None => Ok(system),
        }
    }

    /// Builds and runs the combined system until `horizon`, returning
    /// the finished system for inspection.
    ///
    /// # Errors
    /// Returns [`CoreError::Config`] if construction fails.
    pub fn run(
        self,
        graph: Graph,
        seed: u64,
        horizon: SimTime,
    ) -> Result<StreamingSystem<CreditTradePolicy>, CoreError> {
        let system = self.build(graph, seed)?;
        let profile = system.queue_profile();
        let mut sim = Simulation::with_profile(system, profile);
        sim.schedule(SimTime::ZERO, StreamEvent::Bootstrap);
        sim.run_until(horizon);
        Ok(sim.into_model())
    }
}

/// Realizes a [`MarketConfig`] whose [`MarketConfig::streaming`] is set
/// as a full protocol-level market: the market's topology, credits,
/// pricing and taxation wire the [`CreditTradePolicy`]; the market's
/// `sample_interval` drives the Gini/stall sampling chain; the market's
/// churn (if any) becomes chunk-level peer dynamics; and the market's
/// fault spec (if any) injects chunk-transfer faults
/// ([`StreamingSystem::with_faults`]).
///
/// Precedence: `sample_interval`/`churn` set directly on the
/// [`StreamingConfig`] win; the market-level values only fill in when
/// the protocol config leaves them unset (which is always the case for
/// spec-built configs — the `streaming.*` keys don't expose them).
///
/// # Errors
/// Returns [`CoreError::Config`] if `config.streaming` is [`None`] or
/// any layer's parameters are invalid.
pub fn build_streaming_market(
    config: &MarketConfig,
    seed: u64,
) -> Result<StreamingSystem<CreditTradePolicy>, CoreError> {
    config.validate()?;
    let Some(streaming) = &config.streaming else {
        return Err(CoreError::Config(
            "not a streaming market: set MarketConfig::streaming (spec key `streaming`)".into(),
        ));
    };
    let mut streaming = streaming.clone();
    // Market-level settings fill gaps the protocol config left open;
    // values set directly on the StreamingConfig win, so API callers
    // who configured churn/sampling at the protocol layer keep them.
    if streaming.sample_interval.is_none() {
        streaming.sample_interval = Some(config.sample_interval);
    }
    if streaming.churn.is_none() {
        streaming.churn = match config.churn {
            Some(churn) => Some(
                StreamingChurn::new(churn.arrival_rate, churn.mean_lifespan, churn.attach_degree)
                    .map_err(CoreError::Config)?,
            ),
            None => None,
        };
    }
    let mut rng = SimRng::seed_from_u64(seed);
    let graph = config.build_graph(&mut rng)?;
    let peers: Vec<NodeId> = graph.node_ids().collect();
    let policy = CreditTradePolicy::new(
        &peers,
        config.initial_credits,
        config.pricing,
        config.tax,
        seed,
    )?;
    let system = StreamingSystem::new(graph, streaming, policy, rng).map_err(CoreError::Config)?;
    match config.faults {
        Some(spec) => system.with_faults(spec, seed).map_err(CoreError::Config),
        None => Ok(system),
    }
}

/// Convenience runner: builds the streaming market, simulates until
/// `horizon`, and returns the finished system — the chunk-level
/// counterpart of [`crate::market::run_market`].
#[doc = "\n\nPrefer [`crate::obs::Session`] for new code: it runs both market \
granularities behind one entry point and supports pluggable \
[`crate::obs::Probe`]s. This function is kept as a thin wrapper over a \
probe-less session (bit-identical results, zero overhead) so existing \
callers keep working."]
///
/// # Errors
/// Returns [`CoreError`] if construction fails.
pub fn run_streaming_market(
    config: &MarketConfig,
    seed: u64,
    horizon: SimTime,
) -> Result<StreamingSystem<CreditTradePolicy>, CoreError> {
    if config.streaming.is_none() {
        // Preserve build_streaming_market's refusal before the session
        // would otherwise fall back to the queue-level stack.
        return Err(CoreError::Config(
            "not a streaming market: set MarketConfig::streaming (spec key `streaming`)".into(),
        ));
    }
    let mut session = crate::obs::Session::from_config(config, seed)?;
    session.run_until(horizon);
    Ok(session
        .finish()
        .1
        .chunk()
        .expect("chunk-level config yields a chunk-level model"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::ChurnConfig;
    use scrip_topology::generators::{self, ScaleFreeConfig};

    fn graph(n: usize, seed: u64) -> Graph {
        let mut rng = SimRng::seed_from_u64(seed);
        generators::scale_free(&ScaleFreeConfig::new(n).expect("cfg"), &mut rng).expect("graph")
    }

    #[test]
    fn policy_authorizes_by_wallet() {
        let peers: Vec<NodeId> = (0..2).map(NodeId::from_raw).collect();
        let mut p = CreditTradePolicy::new(&peers, 1, PricingConfig::Uniform { price: 2 }, None, 1)
            .expect("policy");
        // Wallet 1 < price 2: denied.
        assert!(!p.authorize(peers[0], peers[1], 0, SimTime::ZERO));
        assert_eq!(p.denials, 1);
        let mut rich =
            CreditTradePolicy::new(&peers, 10, PricingConfig::Uniform { price: 2 }, None, 1)
                .expect("policy");
        assert!(rich.authorize(peers[0], peers[1], 0, SimTime::ZERO));
    }

    #[test]
    fn settle_moves_credits_and_caps_at_balance() {
        let peers: Vec<NodeId> = (0..2).map(NodeId::from_raw).collect();
        let mut p = CreditTradePolicy::new(&peers, 3, PricingConfig::Uniform { price: 2 }, None, 2)
            .expect("policy");
        p.settle(peers[0], peers[1], 0, SimTime::ZERO);
        assert_eq!(p.ledger().balance(peers[0]), 1);
        assert_eq!(p.ledger().balance(peers[1]), 5);
        assert_eq!(p.shortfalls, 0);
        // Second settle: buyer has 1 < 2, pays what it can.
        p.settle(peers[0], peers[1], 1, SimTime::ZERO);
        assert_eq!(p.ledger().balance(peers[0]), 0);
        assert_eq!(p.ledger().balance(peers[1]), 6);
        assert_eq!(p.shortfalls, 1);
        assert_eq!(p.settlements, 2);
        assert_eq!(p.spent()[&peers[0]], 3);
        assert_eq!(p.earned()[&peers[1]], 3);
        assert!(p.ledger().conserved());
    }

    #[test]
    fn join_and_leave_mint_and_burn() {
        let peers: Vec<NodeId> = (0..3).map(NodeId::from_raw).collect();
        let mut p =
            CreditTradePolicy::new(&peers, 10, PricingConfig::Uniform { price: 1 }, None, 3)
                .expect("policy");
        let joiner = NodeId::from_raw(3);
        p.on_join(joiner, SimTime::ZERO);
        assert_eq!(p.ledger().balance(joiner), 10);
        assert_eq!(p.ledger().minted(), 40);
        assert_eq!(p.spent().len(), 4);
        p.on_leave(joiner, SimTime::ZERO);
        assert_eq!(p.ledger().burned(), 10);
        assert_eq!(p.spent().len(), 3);
        assert!(p.ledger().conserved());
        // A settlement naming the departed seller refuses the transfer.
        p.settle(peers[0], joiner, 0, SimTime::ZERO);
        assert_eq!(
            p.ledger().balance(peers[0]),
            10,
            "no payment left the buyer"
        );
        assert!(p.ledger().conserved());
    }

    #[test]
    fn streaming_market_runs_and_conserves_credits() {
        let g = graph(50, 3);
        let n = g.node_count() as u64;
        let system = StreamingMarket::new(50)
            .run(g, 7, SimTime::from_secs(120))
            .expect("runs");
        let policy = system.policy();
        // All credits remain in wallets + escrow (the source recycles its
        // income instead of sinking it).
        assert_eq!(policy.ledger().total() + policy.ledger().escrow(), n * 50);
        assert!(policy.ledger().conserved());
        assert!(
            policy.settlements > 100,
            "settlements {}",
            policy.settlements
        );
        // Streaming still works under ample credits.
        let report = system.report(SimTime::from_secs(120));
        assert!(
            report.mean_continuity > 0.5,
            "continuity {}",
            report.mean_continuity
        );
    }

    #[test]
    fn poor_swarm_suffers_more_denials_than_rich() {
        // A ~1 chunk/sec economy (the paper's Fig. 1 regime, where peer
        // spending rates are ~1 credit/sec).
        let streaming = StreamingConfig::market_paced(1.0);
        let g = graph(50, 4);
        let rich = StreamingMarket::new(100)
            .streaming(streaming.clone())
            .run(g.clone(), 8, SimTime::from_secs(240))
            .expect("runs");
        let poor = StreamingMarket::new(1)
            .streaming(streaming)
            .pricing(PricingConfig::Uniform { price: 3 })
            .run(g, 8, SimTime::from_secs(240))
            .expect("runs");
        assert!(
            poor.policy().denials > 2 * rich.policy().denials.max(1),
            "poor swarm denials {} vs rich {}",
            poor.policy().denials,
            rich.policy().denials
        );
        // And its streaming quality is visibly worse (broke peers cannot
        // even start playback, so compare download rates).
        let rich_report = rich.report(SimTime::from_secs(240));
        let poor_report = poor.report(SimTime::from_secs(240));
        assert!(
            poor_report.mean_download_rate < 0.5 * rich_report.mean_download_rate,
            "poor dl {} vs rich dl {}",
            poor_report.mean_download_rate,
            rich_report.mean_download_rate
        );
    }

    #[test]
    fn taxation_collects_in_streaming_market() {
        let g = graph(40, 5);
        let system = StreamingMarket::new(60)
            .tax(TaxConfig::new(0.2, 30).expect("valid"))
            .run(g, 9, SimTime::from_secs(150))
            .expect("runs");
        let tax = system.policy().taxation().expect("enabled");
        assert!(tax.collected > 0, "no tax collected");
        assert!(system.policy().ledger().conserved());
    }

    #[test]
    fn spending_rates_sorted_monotone() {
        let g = graph(30, 6);
        let system = StreamingMarket::new(30)
            .run(g, 10, SimTime::from_secs(60))
            .expect("runs");
        let rates = system
            .policy()
            .spending_rates_sorted(SimTime::from_secs(60));
        assert_eq!(rates.len(), 30);
        for w in rates.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn declarative_streaming_market_runs_end_to_end() {
        let config = MarketConfig::new(40, 60)
            .streaming_market(StreamingConfig::market_paced(1.0))
            .sample_interval(scrip_des::SimDuration::from_secs(20));
        let system = run_streaming_market(&config, 11, SimTime::from_secs(200)).expect("runs");
        let policy = system.policy();
        assert!(
            policy.settlements > 100,
            "settlements {}",
            policy.settlements
        );
        assert!(policy.ledger().conserved());
        // The sampling chain recorded both series.
        assert!(
            policy.gini_series().len() >= 9,
            "{}",
            policy.gini_series().len()
        );
        assert!(system.stall_series().len() >= 9);
        // Non-streaming configs are refused.
        let queue_level = MarketConfig::new(40, 60);
        assert!(build_streaming_market(&queue_level, 11).is_err());
    }

    #[test]
    fn declarative_streaming_market_with_churn_conserves() {
        let config = MarketConfig::new(40, 30)
            .streaming_market(StreamingConfig::market_paced(1.0))
            .churn(ChurnConfig::new(0.4, 100.0, 8).expect("valid"))
            .sample_interval(scrip_des::SimDuration::from_secs(20));
        let system = run_streaming_market(&config, 13, SimTime::from_secs(300)).expect("runs");
        let policy = system.policy();
        assert!(policy.ledger().conserved(), "conservation through churn");
        assert!(policy.ledger().minted() > 40 * 30, "joiners mint credits");
        assert!(policy.ledger().burned() > 0, "departures burn credits");
        // Policy accounting tracks the live population exactly.
        assert_eq!(policy.spent().len(), system.peer_count());
        assert_eq!(policy.ledger().accounts(), system.peer_count());
    }

    #[test]
    fn protocol_level_churn_and_sampling_take_precedence() {
        use scrip_streaming::StreamingChurn;
        // Churn/sampling set on the StreamingConfig itself survive the
        // market wiring even when the MarketConfig leaves them unset.
        let streaming = StreamingConfig {
            churn: Some(StreamingChurn::new(0.3, 100.0, 6).expect("valid")),
            sample_interval: Some(scrip_des::SimDuration::from_secs(7)),
            ..StreamingConfig::market_paced(1.0)
        };
        let config = MarketConfig::new(20, 30).streaming_market(streaming);
        let system = build_streaming_market(&config, 5).expect("builds");
        let built = system.config();
        assert_eq!(
            built.sample_interval,
            Some(scrip_des::SimDuration::from_secs(7)),
            "protocol-level sample interval was overwritten"
        );
        assert_eq!(
            built.churn.map(|c| c.attach_degree),
            Some(6),
            "protocol-level churn was overwritten"
        );
        // Market-level values still fill the gaps when unset.
        let config = MarketConfig::new(20, 30)
            .streaming_market(StreamingConfig::market_paced(1.0))
            .churn(ChurnConfig::new(0.2, 150.0, 9).expect("valid"));
        let system = build_streaming_market(&config, 5).expect("builds");
        assert_eq!(system.config().churn.map(|c| c.attach_degree), Some(9));
        assert_eq!(
            system.config().sample_interval,
            Some(config.sample_interval)
        );
    }

    #[test]
    fn faulted_streaming_market_conserves_credits() {
        let spec = FaultSpec {
            drop_rate: 0.1,
            defect_rate: 0.05,
            delay_rate: 0.05,
            crash_fraction: 0.15,
            onset: scrip_des::SimTime::from_secs(10),
            crash_spread: scrip_des::SimDuration::from_secs(40),
            ..FaultSpec::default()
        };
        let g = graph(50, 14);
        let system = StreamingMarket::new(50)
            .faults(spec)
            .run(g, 15, SimTime::from_secs(180))
            .expect("runs");
        let stats = system.fault_stats();
        assert!(stats.failed_attempts() > 0, "{stats:?}");
        assert!(stats.crashes > 0, "{stats:?}");
        let policy = system.policy();
        // Conservation through every fault path: drops move nothing,
        // defections settle normally (seller keeps the payment), crashes
        // burn the departing wallet.
        assert!(policy.ledger().conserved());
        assert!(policy.ledger().burned() > 0, "crashed wallets burn");
        // Defections settled credits without delivering goods, so
        // settlements exceed the chunks peers actually received.
        let received: u64 = system
            .peers()
            .map(|(_, s)| s.stats.received_from_peers)
            .sum();
        assert!(
            policy.settlements > received,
            "settlements {} should exceed received {received} under defection",
            policy.settlements
        );
    }

    #[test]
    fn declarative_faulted_streaming_market_runs() {
        let spec = FaultSpec {
            drop_rate: 0.1,
            defect_rate: 0.05,
            delay_rate: 0.0,
            crash_fraction: 0.0,
            onset: scrip_des::SimTime::from_secs(10),
            ..FaultSpec::default()
        };
        let config = MarketConfig::new(40, 30)
            .streaming_market(StreamingConfig::market_paced(1.0))
            .faults(spec)
            .sample_interval(scrip_des::SimDuration::from_secs(20));
        let system = run_streaming_market(&config, 16, SimTime::from_secs(200)).expect("runs");
        assert!(system.faults_enabled());
        assert!(system.fault_stats().failed_attempts() > 0);
        assert!(system.policy().ledger().conserved());
        // With the fault key absent the same config installs no plan.
        let mut clean = config.clone();
        clean.faults = None;
        let clean = run_streaming_market(&clean, 16, SimTime::from_secs(200)).expect("runs");
        assert!(!clean.faults_enabled());
    }

    #[test]
    fn deterministic_given_seed() {
        let config = MarketConfig::new(30, 40)
            .streaming_market(StreamingConfig::market_paced(1.0))
            .sample_interval(scrip_des::SimDuration::from_secs(25));
        let a = run_streaming_market(&config, 21, SimTime::from_secs(150)).expect("runs");
        let b = run_streaming_market(&config, 21, SimTime::from_secs(150)).expect("runs");
        assert_eq!(a.policy().balances_sorted(), b.policy().balances_sorted());
        assert_eq!(a.policy().gini_series(), b.policy().gini_series());
        assert_eq!(a.stall_series(), b.stall_series());
        let c = run_streaming_market(&config, 22, SimTime::from_secs(150)).expect("runs");
        assert_ne!(a.policy().balances_sorted(), c.policy().balances_sorted());
    }
}

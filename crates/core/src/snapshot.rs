//! Binary checkpoint encoding.
//!
//! A tiny hand-rolled little-endian codec for [`crate::obs::Session`]
//! snapshots: fixed-width scalars, length-prefixed byte blocks, and a
//! fail-closed [`Reader`] that reports truncation instead of panicking.
//! Everything is deterministic — the same state always serializes to
//! the same bytes, which the checkpoint/resume byte-identity tests rely
//! on.

use crate::error::CoreError;

/// Magic prefix of every snapshot ("SCRIPCKP" as bytes).
pub(crate) const MAGIC: [u8; 8] = *b"SCRIPCKP";
/// Format version; bump on any layout change.
pub(crate) const VERSION: u32 = 1;

/// An append-only snapshot encoder.
#[derive(Debug, Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A writer starting with the magic prefix and format version.
    pub(crate) fn with_header() -> Self {
        let mut w = Writer { buf: Vec::new() };
        w.buf.extend_from_slice(&MAGIC);
        w.put_u32(VERSION);
        w
    }

    pub(crate) fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    pub(crate) fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed opaque block (probe state, nested sections).
    pub(crate) fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes encoded so far (trace payloads hash and copy these
    /// without consuming the writer).
    pub(crate) fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Empties the buffer so a long-lived writer can re-encode without
    /// reallocating (the per-event trace hot path).
    pub(crate) fn clear(&mut self) {
        self.buf.clear();
    }
}

/// A fail-closed snapshot decoder over a byte slice.
#[derive(Debug)]
pub(crate) struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps `data` with no header check — for nested blocks (e.g.
    /// per-probe state) written by a plain [`Writer::default`].
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Wraps `data`, checking the magic prefix and format version.
    pub(crate) fn with_header(data: &'a [u8]) -> Result<Self, CoreError> {
        let mut r = Reader { data, pos: 0 };
        let magic = r.take(MAGIC.len())?;
        if magic != MAGIC {
            return Err(CoreError::Checkpoint(
                "not a scrip checkpoint (bad magic)".into(),
            ));
        }
        let version = r.take_u32()?;
        if version != VERSION {
            return Err(CoreError::Checkpoint(format!(
                "unsupported snapshot version {version} (this build reads {VERSION})"
            )));
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CoreError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.data.len());
        let Some(end) = end else {
            return Err(CoreError::Checkpoint(format!(
                "truncated snapshot: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.data.len()
            )));
        };
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn take_u8(&mut self) -> Result<u8, CoreError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn take_bool(&mut self) -> Result<bool, CoreError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CoreError::Checkpoint(format!("invalid bool byte {b}"))),
        }
    }

    pub(crate) fn take_u32(&mut self) -> Result<u32, CoreError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn take_u64(&mut self) -> Result<u64, CoreError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn take_f64(&mut self) -> Result<f64, CoreError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// A length-prefixed block written by [`Writer::put_bytes`].
    pub(crate) fn take_bytes(&mut self) -> Result<&'a [u8], CoreError> {
        let len = self.take_u64()?;
        let len = usize::try_from(len)
            .map_err(|_| CoreError::Checkpoint(format!("block length {len} overflows usize")))?;
        self.take(len)
    }

    /// Fails if any bytes remain unread (catches writer/reader drift).
    pub(crate) fn finish(self) -> Result<(), CoreError> {
        if self.pos != self.data.len() {
            return Err(CoreError::Checkpoint(format!(
                "snapshot has {} trailing bytes",
                self.data.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// FNV-1a over a byte string — the configuration fingerprint stored in
/// every snapshot so a resume against a different scenario fails loudly
/// instead of silently diverging.
pub(crate) fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_blocks() {
        let mut w = Writer::with_header();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.125);
        w.put_bytes(b"hello");
        let bytes = w.into_bytes();

        let mut r = Reader::with_header(&bytes).expect("valid header");
        assert_eq!(r.take_u8().expect("u8"), 7);
        assert!(r.take_bool().expect("bool"));
        assert_eq!(r.take_u32().expect("u32"), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().expect("u64"), u64::MAX - 1);
        assert_eq!(r.take_f64().expect("f64"), -0.125);
        assert_eq!(r.take_bytes().expect("bytes"), b"hello");
        r.finish().expect("fully consumed");
    }

    #[test]
    fn rejects_bad_magic_truncation_and_trailing_bytes() {
        assert!(Reader::with_header(b"NOTASNAP____").is_err());
        let mut w = Writer::with_header();
        w.put_u64(42);
        let bytes = w.into_bytes();
        // Truncated mid-scalar.
        let mut r = Reader::with_header(&bytes[..bytes.len() - 2]).expect("header ok");
        assert!(r.take_u64().is_err());
        // Trailing garbage.
        let r = Reader::with_header(&bytes).expect("header ok");
        assert!(r.finish().is_err());
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        assert_eq!(fingerprint(b"abc"), fingerprint(b"abc"));
        assert_ne!(fingerprint(b"abc"), fingerprint(b"abd"));
    }
}

//! Chunk pricing schemes (paper Sec. V-C and Fig. 1).
//!
//! The paper studies three pricing regimes:
//!
//! * **uniform pricing** — every chunk costs the same everywhere; in
//!   streaming this yields symmetric utilization and no condensation;
//! * **per-seller prices** — each peer posts its own price; utilizations
//!   diverge and condensation becomes possible;
//! * **per-chunk prices** — Fig. 1's condensing configuration: "peers
//!   charge different credits for selling different chunks, which follow
//!   a Poisson distribution with an average of 1 credit per chunk".
//!
//! Poisson(1) puts ~37% of its mass at zero; a free chunk moves no
//! credits, so sampled prices are clamped to ≥ 1 (raising the effective
//! mean to `mean + e^(−mean)`). [`PricingModel::mean_price`] reports the
//! clamped mean, which the market simulator uses to convert credit
//! spending rates into purchase-attempt rates.

use scrip_des::dist::Poisson;
use scrip_des::SimRng;
use scrip_topology::NodeId;

use crate::arena::PeerArena;
use crate::error::CoreError;

/// Declarative description of a pricing scheme.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PricingConfig {
    /// Every chunk costs `price` credits at every seller (the paper's
    /// default: 1 credit per chunk).
    Uniform {
        /// Credits per chunk.
        price: u64,
    },
    /// Each seller posts one Poisson-distributed price (clamped ≥ 1) for
    /// all its chunks.
    SellerPoisson {
        /// Mean of the (unclamped) Poisson price distribution.
        mean: f64,
    },
    /// Every (seller, chunk) pair has its own Poisson-distributed price
    /// (clamped ≥ 1), deterministic in the seller, chunk and market seed
    /// — Fig. 1's condensing configuration.
    ChunkPoisson {
        /// Mean of the (unclamped) Poisson price distribution.
        mean: f64,
    },
}

impl Default for PricingConfig {
    fn default() -> Self {
        PricingConfig::Uniform { price: 1 }
    }
}

impl PricingConfig {
    /// Validates parameters.
    ///
    /// # Errors
    /// Returns [`CoreError::Config`] for zero uniform prices or
    /// non-positive Poisson means.
    pub fn validate(&self) -> Result<(), CoreError> {
        match *self {
            PricingConfig::Uniform { price } => {
                if price == 0 {
                    return Err(CoreError::Config("uniform price must be >= 1".into()));
                }
            }
            PricingConfig::SellerPoisson { mean } | PricingConfig::ChunkPoisson { mean } => {
                if !(mean.is_finite() && mean > 0.0) {
                    return Err(CoreError::Config(format!(
                        "Poisson price mean must be > 0, got {mean}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// A realized pricing scheme ready to quote prices.
///
/// Per-seller state is slot-indexed through a [`PeerArena`], so a
/// [`PricingModel::price`] quote on the market hot path is one array
/// load rather than a tree lookup.
#[derive(Clone, Debug)]
pub struct PricingModel {
    config: PricingConfig,
    /// Sellers with posted prices ([`PricingConfig::SellerPoisson`]).
    sellers: PeerArena,
    /// Slot-indexed posted prices (parallel to `sellers`).
    seller_prices: Vec<u64>,
    /// Hash seed for [`PricingConfig::ChunkPoisson`].
    seed: u64,
    /// Precomputed CDF of the clamped Poisson, for O(log k) hashing-based
    /// quotes.
    chunk_cdf: Vec<f64>,
}

/// Equality is semantic: same scheme, same hash seed/CDF, and the same
/// seller → price mapping — independent of slot layout, so models that
/// reached the same posted prices through different churn histories
/// compare equal (mirroring [`crate::Ledger`]'s and
/// [`scrip_topology::Graph`]'s layout-independent equality).
impl PartialEq for PricingModel {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
            && self.seed == other.seed
            && self.chunk_cdf == other.chunk_cdf
            && self.sellers.len() == other.sellers.len()
            && self
                .sellers
                .ids()
                .iter()
                .zip(&self.seller_prices)
                .all(|(&id, &p)| other.seller_price(id) == Some(p))
    }
}

impl PricingModel {
    /// Realizes a pricing scheme for the given peers.
    ///
    /// # Errors
    /// Returns [`CoreError::Config`] for invalid parameters.
    pub fn realize(
        config: PricingConfig,
        peers: &[NodeId],
        rng: &mut SimRng,
    ) -> Result<Self, CoreError> {
        config.validate()?;
        let mut model = PricingModel {
            config,
            sellers: PeerArena::new(),
            seller_prices: Vec::new(),
            seed: 0,
            chunk_cdf: Vec::new(),
        };
        match config {
            PricingConfig::Uniform { .. } => {}
            PricingConfig::SellerPoisson { mean } => {
                let dist = Poisson::new(mean)
                    .map_err(|e| CoreError::Config(format!("price distribution: {e}")))?;
                for &p in peers {
                    model.sellers.insert(p);
                    model.seller_prices.push(dist.sample(rng).max(1));
                }
            }
            PricingConfig::ChunkPoisson { mean } => {
                model.seed = rng.fork_seed();
                model.chunk_cdf = clamped_poisson_cdf(mean);
            }
        }
        Ok(model)
    }

    /// The declarative configuration this model was realized from.
    pub fn config(&self) -> PricingConfig {
        self.config
    }

    /// Quotes the price of `chunk` at `seller`.
    #[inline]
    pub fn price(&self, seller: NodeId, chunk: u64) -> u64 {
        match self.config {
            PricingConfig::Uniform { price } => price,
            PricingConfig::SellerPoisson { .. } => self
                .sellers
                .slot(seller)
                .map_or(1, |s| self.seller_prices[s]),
            PricingConfig::ChunkPoisson { .. } => {
                let h = splitmix64(
                    self.seed ^ seller.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ chunk,
                );
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                let idx = self.chunk_cdf.partition_point(|&c| c < u);
                (idx as u64 + 1).min(self.chunk_cdf.len() as u64)
            }
        }
    }

    /// The mean quoted price (after clamping), used to convert credit
    /// spending rates into purchase-attempt rates.
    pub fn mean_price(&self) -> f64 {
        match self.config {
            PricingConfig::Uniform { price } => price as f64,
            PricingConfig::SellerPoisson { mean } | PricingConfig::ChunkPoisson { mean } => {
                mean + (-mean).exp()
            }
        }
    }

    /// Heap bytes reserved by per-seller storage (posted-price slot map
    /// and price vector; capacities) plus the fixed-size chunk CDF.
    /// Uniform pricing holds no per-peer state, so this is 0 there.
    pub fn heap_bytes(&self) -> usize {
        self.sellers.heap_bytes()
            + self.seller_prices.capacity() * std::mem::size_of::<u64>()
            + self.chunk_cdf.capacity() * std::mem::size_of::<f64>()
    }

    /// Registers a newly joined seller (samples its posted price when the
    /// scheme is per-seller).
    pub fn on_join(&mut self, peer: NodeId, rng: &mut SimRng) {
        if let PricingConfig::SellerPoisson { mean } = self.config {
            let dist = Poisson::new(mean).expect("validated at realize time");
            self.sellers.insert(peer);
            self.seller_prices.push(dist.sample(rng).max(1));
        }
    }

    /// Removes a departed seller's posted price.
    pub fn on_leave(&mut self, peer: NodeId) {
        if let Some(removal) = self.sellers.remove(peer) {
            self.seller_prices.swap_remove(removal.slot);
        }
    }

    /// The posted per-seller price, when the scheme is per-seller.
    pub fn seller_price(&self, peer: NodeId) -> Option<u64> {
        self.sellers.slot(peer).map(|s| self.seller_prices[s])
    }

    /// Checkpoint view of the realized state: the seller → price
    /// entries **in slot order** (so a restore reproduces the exact
    /// arena layout, which quote lookups depend on after churn) plus
    /// the chunk-hash seed. The CDF is recomputed from configuration.
    pub(crate) fn snapshot_state(&self) -> (Vec<(NodeId, u64)>, u64) {
        let entries = self
            .sellers
            .ids()
            .iter()
            .zip(&self.seller_prices)
            .map(|(&id, &p)| (id, p))
            .collect();
        (entries, self.seed)
    }

    /// Rebuilds a realized model from a checkpoint taken with
    /// [`PricingModel::snapshot_state`]: `sellers` must be the
    /// slot-ordered entries and `seed` the chunk-hash seed. No RNG is
    /// consumed — the realized draws are already in the entries.
    pub(crate) fn restore_state(
        config: PricingConfig,
        sellers: &[(NodeId, u64)],
        seed: u64,
    ) -> Result<Self, CoreError> {
        config.validate()?;
        let mut model = PricingModel {
            config,
            sellers: PeerArena::new(),
            seller_prices: Vec::with_capacity(sellers.len()),
            seed: 0,
            chunk_cdf: Vec::new(),
        };
        match config {
            PricingConfig::Uniform { .. } => {}
            PricingConfig::SellerPoisson { .. } => {
                for &(id, price) in sellers {
                    model.sellers.insert(id);
                    model.seller_prices.push(price);
                }
            }
            PricingConfig::ChunkPoisson { mean } => {
                model.seed = seed;
                model.chunk_cdf = clamped_poisson_cdf(mean);
            }
        }
        Ok(model)
    }
}

/// CDF of `max(1, Poisson(mean))` over values `1, 2, 3, …` (truncated
/// when the tail mass drops below 1e-12).
fn clamped_poisson_cdf(mean: f64) -> Vec<f64> {
    let mut cdf = Vec::new();
    // P(X = 0) collapses onto 1.
    let mut pk = (-mean).exp(); // P(X = 0)
    let mut acc = pk; // clamped mass at value 1 includes P(0)
    let mut k = 1u32;
    loop {
        pk *= mean / k as f64; // P(X = k)
        acc += pk;
        cdf.push(acc.min(1.0));
        if 1.0 - acc < 1e-12 || k > 10_000 {
            break;
        }
        k += 1;
    }
    if let Some(last) = cdf.last_mut() {
        *last = 1.0;
    }
    cdf
}

/// SplitMix64: a fast, well-mixed 64-bit hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Extension helper: derives a fresh hash seed from a [`SimRng`].
trait ForkSeed {
    fn fork_seed(&mut self) -> u64;
}

impl ForkSeed for SimRng {
    fn fork_seed(&mut self) -> u64 {
        use rand::RngCore;
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId::from_raw).collect()
    }

    #[test]
    fn uniform_pricing_quotes_flat() {
        let mut rng = SimRng::seed_from_u64(1);
        let m = PricingModel::realize(PricingConfig::Uniform { price: 3 }, &ids(4), &mut rng)
            .expect("valid");
        for s in ids(4) {
            for c in [0u64, 7, 99] {
                assert_eq!(m.price(s, c), 3);
            }
        }
        assert_eq!(m.mean_price(), 3.0);
    }

    #[test]
    fn config_validation() {
        assert!(PricingConfig::Uniform { price: 0 }.validate().is_err());
        assert!(PricingConfig::SellerPoisson { mean: 0.0 }
            .validate()
            .is_err());
        assert!(PricingConfig::ChunkPoisson { mean: -1.0 }
            .validate()
            .is_err());
        assert!(PricingConfig::default().validate().is_ok());
    }

    #[test]
    fn seller_poisson_prices_are_fixed_per_seller_and_heterogeneous() {
        let mut rng = SimRng::seed_from_u64(2);
        let peers = ids(200);
        let m = PricingModel::realize(PricingConfig::SellerPoisson { mean: 2.0 }, &peers, &mut rng)
            .expect("valid");
        let mut distinct = std::collections::BTreeSet::new();
        for &s in &peers {
            let p = m.price(s, 0);
            assert!(p >= 1);
            assert_eq!(p, m.price(s, 12345), "price varies per chunk");
            assert_eq!(Some(p), m.seller_price(s));
            distinct.insert(p);
        }
        assert!(distinct.len() >= 3, "prices should be heterogeneous");
    }

    #[test]
    fn chunk_poisson_prices_are_deterministic_and_vary() {
        let mut rng = SimRng::seed_from_u64(3);
        let peers = ids(5);
        let m = PricingModel::realize(PricingConfig::ChunkPoisson { mean: 1.0 }, &peers, &mut rng)
            .expect("valid");
        let s = peers[0];
        let p1 = m.price(s, 1);
        assert_eq!(p1, m.price(s, 1), "deterministic");
        let mut distinct = std::collections::BTreeSet::new();
        for c in 0..500u64 {
            let p = m.price(s, c);
            assert!(p >= 1);
            distinct.insert(p);
        }
        assert!(distinct.len() >= 2, "per-chunk variation expected");
    }

    #[test]
    fn chunk_poisson_empirical_mean_matches() {
        let mut rng = SimRng::seed_from_u64(4);
        let peers = ids(2);
        let mean = 1.0;
        let m = PricingModel::realize(PricingConfig::ChunkPoisson { mean }, &peers, &mut rng)
            .expect("valid");
        let n = 200_000u64;
        let total: u64 = (0..n).map(|c| m.price(peers[0], c)).sum();
        let emp = total as f64 / n as f64;
        let expected = m.mean_price(); // 1 + e^{-1} ≈ 1.3679
        assert!(
            (emp - expected).abs() < 0.01,
            "empirical {emp} vs expected {expected}"
        );
    }

    #[test]
    fn join_and_leave_update_seller_prices() {
        let mut rng = SimRng::seed_from_u64(5);
        let peers = ids(3);
        let mut m =
            PricingModel::realize(PricingConfig::SellerPoisson { mean: 1.0 }, &peers, &mut rng)
                .expect("valid");
        let newcomer = NodeId::from_raw(99);
        assert_eq!(m.seller_price(newcomer), None);
        m.on_join(newcomer, &mut rng);
        assert!(m.seller_price(newcomer).expect("joined") >= 1);
        m.on_leave(newcomer);
        assert_eq!(m.seller_price(newcomer), None);
        // Unknown sellers quote the floor price of 1 rather than panicking.
        assert_eq!(m.price(newcomer, 0), 1);
    }

    #[test]
    fn snapshot_round_trips_all_schemes() {
        let mut rng = SimRng::seed_from_u64(6);
        for config in [
            PricingConfig::Uniform { price: 2 },
            PricingConfig::SellerPoisson { mean: 2.0 },
            PricingConfig::ChunkPoisson { mean: 1.0 },
        ] {
            let mut m = PricingModel::realize(config, &ids(30), &mut rng).expect("valid");
            // Perturb the slot layout the way churn does.
            m.on_leave(NodeId::from_raw(3));
            m.on_join(NodeId::from_raw(77), &mut rng);
            let (entries, seed) = m.snapshot_state();
            let restored = PricingModel::restore_state(config, &entries, seed).expect("valid");
            assert_eq!(restored, m, "{config:?}");
            // Layout-exact, not just semantically equal: quotes agree
            // for every seller and chunk probed.
            for s in ids(30).into_iter().chain([NodeId::from_raw(77)]) {
                for c in [0u64, 5, 99] {
                    assert_eq!(restored.price(s, c), m.price(s, c));
                }
            }
        }
    }

    #[test]
    fn clamped_cdf_is_monotone_and_complete() {
        let cdf = clamped_poisson_cdf(1.0);
        assert!(!cdf.is_empty());
        for w in cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(*cdf.last().expect("non-empty"), 1.0);
        // Mass at value 1 = P(0) + P(1) = 2/e ≈ 0.7358.
        assert!((cdf[0] - 2.0 * (-1.0f64).exp()).abs() < 1e-9);
    }
}

//! The unified observation API: pluggable probes over one `Session`
//! runner that drives *both* market granularities.
//!
//! The paper's evaluation is a family of observations — Gini
//! trajectories, wealth distributions, spending rates, stall rates —
//! over one simulated economy. This module turns "what we measure" into
//! data instead of code:
//!
//! * [`MarketView`] — the read-only facade a probe observes. Both the
//!   queue-level [`CreditMarket`] and the chunk-level
//!   [`StreamingSystem<CreditTradePolicy>`] implement it, so a probe
//!   written once works at either granularity.
//! * [`Probe`] — the observer interface: [`Probe::on_bootstrap`] at the
//!   start of the run, [`Probe::on_settle`] /  [`Probe::on_sample`] at
//!   each sampling boundary, [`Probe::at_horizon`] once at the end.
//! * [`Recorder`] / [`RunRecord`] — the typed-series container probes
//!   write into, keyed by string [`MetricId`]s (well-known ids in
//!   [`ids`]).
//! * [`Session`] — the one entry point that subsumes
//!   [`crate::market::run_market`] and
//!   [`crate::protocol::run_streaming_market`]: build from any
//!   [`MarketConfig`], [`Session::attach`] probes, [`Session::run_until`]
//!   the horizon, [`Session::finish`] into a [`RunRecord`] plus the
//!   finished model.
//!
//! ## Hot-path cost
//!
//! Probe dispatch happens **only at sampling boundaries** (the market's
//! `sample_interval`, plus any extra stop times probes request): the
//! session runs the simulator in uninterrupted spans between stops and
//! never interposes on individual spend/settle events, so the
//! allocation-free spend and chunk-trade hot paths are untouched. With
//! no probes attached the session is a single `run_until` call — zero
//! overhead over the old entry points (measured by the
//! `probe_attached`/`probe_detached` entries of `scrip-sim bench`).
//!
//! ## Example
//!
//! ```
//! use scrip_core::market::MarketConfig;
//! use scrip_core::obs::{probes, Session};
//! use scrip_des::SimTime;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = MarketConfig::new(50, 20);
//! let mut session = Session::from_config(&config, 7)?;
//! session.attach(Box::new(probes::PopulationSeriesProbe::new()));
//! session.attach(Box::new(probes::LorenzProbe::new(20)));
//! session.run_until(SimTime::from_secs(500));
//! let (record, _model) = session.finish();
//! let population = record.series(scrip_core::obs::ids::POPULATION_SERIES);
//! assert_eq!(population.first(), Some(&(0.0, 50.0)));
//! assert_eq!(record.counter(scrip_core::obs::ids::PEER_COUNT), 50);
//! # Ok(())
//! # }
//! ```

use std::io::BufWriter;
use std::path::Path;

use scrip_des::stats::TimeSeries;
use scrip_des::{
    RunStats, Scheduled, Scheduler, ShardedSimulation, SimDuration, SimTime, Simulation,
    TraceError, TraceFrame, TraceHeader, TraceReader, TraceWriter,
};
use scrip_streaming::{StreamEvent, StreamingSystem};

use crate::credits::Ledger;
use crate::error::CoreError;
use crate::market::{CreditMarket, FaultStats, MarketConfig, MarketEvent};
use crate::policy::Taxation;
use crate::protocol::{build_streaming_market, CreditTradePolicy};
use crate::sharded::ShardedMarket;
use crate::snapshot;

pub mod probes;

/// Identifies one recorded metric inside a [`RunRecord`]. Plain strings
/// so downstream registries (e.g. the scenario engine's) can mint new
/// metrics without touching this crate.
pub type MetricId = String;

/// Well-known [`MetricId`]s: what the built-in [`probes`] and
/// [`Session::finish`] record.
pub mod ids {
    /// `(t, Gini)` trajectory ([`super::probes::GiniSeriesProbe`]).
    pub const GINI_SERIES: &str = "gini-series";
    /// Final wealth distribution, sorted ascending
    /// ([`super::probes::FinalBalancesProbe`]).
    pub const FINAL_BALANCES: &str = "final-balances";
    /// Per-peer spending rates, sorted ascending
    /// ([`super::probes::SpendingRatesProbe`]).
    pub const SPENDING_RATES: &str = "spending-rates";
    /// Sorted wealth snapshots at requested times
    /// ([`super::probes::SnapshotsProbe`]).
    pub const SNAPSHOTS: &str = "snapshots";
    /// `(t, stall rate)` trajectory; empty for queue-level markets
    /// ([`super::probes::StallSeriesProbe`]).
    pub const STALL_SERIES: &str = "stall-series";
    /// `(t, purchases/sec)` trajectory
    /// ([`super::probes::ThroughputSeriesProbe`]).
    pub const THROUGHPUT_SERIES: &str = "throughput-series";
    /// `(t, live peers)` trajectory
    /// ([`super::probes::PopulationSeriesProbe`]).
    pub const POPULATION_SERIES: &str = "population-series";
    /// Final Lorenz curve `(population share, wealth share)`
    /// ([`super::probes::LorenzProbe`]).
    pub const LORENZ: &str = "lorenz";
    /// Successful purchases (settlements at chunk granularity) —
    /// recorded by [`super::Session::finish`].
    pub const PURCHASES: &str = "purchases";
    /// Purchase attempts refused for lack of credits.
    pub const DENIED: &str = "denied";
    /// Total credits spent by live peers.
    pub const TOTAL_SPENT: &str = "total-spent";
    /// Live peers at the horizon.
    pub const PEER_COUNT: &str = "peer-count";
    /// Gini of the final wealth distribution (absent when the market
    /// has no peers at the horizon).
    pub const WEALTH_GINI: &str = "wealth-gini";
    /// Credits collected by taxation (0 without tax).
    pub const TAX_COLLECTED: &str = "tax-collected";
    /// Credits redistributed by taxation (0 without tax).
    pub const TAX_REDISTRIBUTED: &str = "tax-redistributed";
    /// `(t, cumulative failed delivery attempts)` trajectory
    /// ([`super::probes::FaultSeriesProbe`]); empty with faults off.
    pub const FAULT_SERIES: &str = "fault-series";
    /// `(t, credits withheld in trade escrow)` trajectory
    /// ([`super::probes::FaultSeriesProbe`]); empty with faults off.
    pub const ESCROW_SERIES: &str = "escrow-series";
    /// Trades concluded successfully despite faults.
    pub const FAULT_DELIVERED: &str = "fault-delivered";
    /// Delivery attempts lost in flight.
    pub const FAULT_DROPPED: &str = "fault-dropped";
    /// Delivery attempts where the seller took payment and defected.
    pub const FAULT_DEFECTED: &str = "fault-defected";
    /// Delivery attempts that arrived late (after a delay penalty).
    pub const FAULT_DELAYED: &str = "fault-delayed";
    /// Retries issued after drops/defects.
    pub const FAULT_RETRIES: &str = "fault-retries";
    /// Trades abandoned with the escrow refunded to the buyer.
    pub const FAULT_REFUNDED: &str = "fault-refunded";
    /// Peers removed by injected crashes.
    pub const FAULT_CRASHES: &str = "fault-crashes";
    /// `(attempt, trades concluded at that attempt)` histogram
    /// ([`super::probes::FaultSeriesProbe`]).
    pub const RETRY_DEPTH: &str = "retry-depth";
}

/// One recorded value: every shape the evaluation pipeline aggregates.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// An `(x, y)` series — trajectories and curves.
    Series(Vec<(f64, f64)>),
    /// A sorted integer distribution (e.g. final balances).
    SortedU64(Vec<u64>),
    /// A sorted float distribution (e.g. spending rates).
    SortedF64(Vec<f64>),
    /// Sorted wealth snapshots: `(time secs, sorted balances)`.
    Snapshots(Vec<(u64, Vec<u64>)>),
    /// An event count.
    Counter(u64),
    /// A single number.
    Scalar(f64),
}

/// Everything measured in one finished run: `(MetricId, MetricValue)`
/// entries in recording order. The typed accessors return empty/zero
/// defaults for absent or differently-typed ids, so consumers read the
/// metrics they care about without `match` boilerplate; use
/// [`RunRecord::get`] when absence must be distinguished.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunRecord {
    entries: Vec<(MetricId, MetricValue)>,
}

impl RunRecord {
    /// The raw value recorded under `id`, if any.
    pub fn get(&self, id: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|(name, _)| name == id)
            .map(|(_, v)| v)
    }

    /// All recorded ids, in recording order.
    pub fn ids(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(name, _)| name.as_str())
    }

    /// The `(x, y)` series under `id` (empty if absent or not a series).
    pub fn series(&self, id: &str) -> &[(f64, f64)] {
        match self.get(id) {
            Some(MetricValue::Series(points)) => points,
            _ => &[],
        }
    }

    /// The sorted integer distribution under `id` (empty if absent).
    pub fn sorted_u64(&self, id: &str) -> &[u64] {
        match self.get(id) {
            Some(MetricValue::SortedU64(values)) => values,
            _ => &[],
        }
    }

    /// The sorted float distribution under `id` (empty if absent).
    pub fn sorted_f64(&self, id: &str) -> &[f64] {
        match self.get(id) {
            Some(MetricValue::SortedF64(values)) => values,
            _ => &[],
        }
    }

    /// The snapshots under `id` (empty if absent).
    pub fn snapshots(&self, id: &str) -> &[(u64, Vec<u64>)] {
        match self.get(id) {
            Some(MetricValue::Snapshots(taken)) => taken,
            _ => &[],
        }
    }

    /// The counter under `id` (0 if absent).
    pub fn counter(&self, id: &str) -> u64 {
        match self.get(id) {
            Some(MetricValue::Counter(n)) => *n,
            _ => 0,
        }
    }

    /// The scalar under `id` (NaN if absent — check [`RunRecord::get`]
    /// when absence matters).
    pub fn scalar(&self, id: &str) -> f64 {
        match self.get(id) {
            Some(MetricValue::Scalar(x)) => *x,
            _ => f64::NAN,
        }
    }
}

/// The write side of a [`RunRecord`]: handed to [`Probe::at_horizon`] so
/// every probe deposits its measurements under its own ids.
#[derive(Debug, Default)]
pub struct Recorder {
    record: RunRecord,
}

impl Recorder {
    /// Records `value` under `id`.
    ///
    /// # Panics
    /// Panics on a duplicate id — two probes claiming the same metric is
    /// a wiring bug, not a runtime condition.
    pub fn record(&mut self, id: impl Into<MetricId>, value: MetricValue) {
        let id = id.into();
        assert!(
            self.record.get(&id).is_none(),
            "duplicate metric id {id:?} recorded"
        );
        self.record.entries.push((id, value));
    }

    /// Finalizes into the immutable [`RunRecord`].
    pub fn finish(self) -> RunRecord {
        self.record
    }
}

/// Read-only view of a running market, shared by both granularities:
/// the queue-level [`CreditMarket`] and the chunk-level
/// [`StreamingSystem<CreditTradePolicy>`]. Everything a probe can
/// observe goes through this trait, so probes are written once and run
/// against either simulator.
///
/// The counter accessors are O(1); the distribution accessors assemble
/// owned vectors and are intended for sampling boundaries, not hot
/// paths.
pub trait MarketView {
    /// Number of live peers.
    fn peer_count(&self) -> usize;
    /// Successful purchases so far (settlements at chunk granularity).
    fn purchases(&self) -> u64;
    /// Purchase attempts refused for lack of credits.
    fn denied(&self) -> u64;
    /// Total credits spent by live peers (O(1)).
    fn total_spent(&self) -> u64;
    /// The credit ledger.
    fn ledger(&self) -> &Ledger;
    /// Taxation state, when taxation is enabled.
    fn taxation(&self) -> Option<&Taxation>;
    /// Current balances sorted ascending.
    fn balances_sorted(&self) -> Vec<u64>;
    /// Gini of the current wealth distribution (O(1) via the ledger's
    /// online accumulator).
    ///
    /// # Errors
    /// Returns [`CoreError::Econ`] if the market has no peers.
    fn wealth_gini(&self) -> Result<f64, CoreError>;
    /// Per-peer credit spending rates over `[0, now]`, sorted ascending.
    fn spending_rates_sorted(&self, now: SimTime) -> Vec<f64>;
    /// The internally recorded `(t, Gini)` trajectory.
    fn gini_series(&self) -> &TimeSeries;
    /// The `(t, stall rate)` trajectory — [`None`] for queue-level
    /// markets, which have no playback to stall.
    fn stall_series(&self) -> Option<&TimeSeries>;
    /// Fault-injection counters — [`None`] when the market runs without
    /// a fault plan (the default).
    fn fault_stats(&self) -> Option<&FaultStats> {
        None
    }
    /// Credits currently withheld in trade escrow for in-flight
    /// deliveries (0 without faults).
    fn in_flight_escrow(&self) -> u64 {
        0
    }
    /// FNV-1a digest of the market's deterministic state, taken at
    /// sampling boundaries for trace digest frames and golden pins.
    /// The queue-level market overrides this with a fold over the exact
    /// checkpoint byte encoding of its state (RNG streams, graph,
    /// arena, ledger, escrow, pricing, fault plan); the default folds
    /// the observable economy — population, counters, escrow pools, and
    /// the full sorted wealth distribution — for views without a
    /// checkpoint codec.
    fn state_digest(&self) -> u64 {
        let mut w = snapshot::Writer::default();
        w.put_u64(self.peer_count() as u64);
        w.put_u64(self.purchases());
        w.put_u64(self.denied());
        w.put_u64(self.total_spent());
        w.put_u64(self.in_flight_escrow());
        let ledger = self.ledger();
        w.put_u64(ledger.escrow());
        w.put_u64(ledger.minted());
        w.put_u64(ledger.burned());
        for balance in self.balances_sorted() {
            w.put_u64(balance);
        }
        snapshot::fingerprint(w.as_slice())
    }
}

impl MarketView for CreditMarket {
    fn peer_count(&self) -> usize {
        CreditMarket::peer_count(self)
    }
    fn purchases(&self) -> u64 {
        CreditMarket::purchases(self)
    }
    fn denied(&self) -> u64 {
        CreditMarket::denied(self)
    }
    fn total_spent(&self) -> u64 {
        CreditMarket::total_spent(self)
    }
    fn ledger(&self) -> &Ledger {
        CreditMarket::ledger(self)
    }
    fn taxation(&self) -> Option<&Taxation> {
        CreditMarket::taxation(self)
    }
    fn balances_sorted(&self) -> Vec<u64> {
        CreditMarket::balances_sorted(self)
    }
    fn wealth_gini(&self) -> Result<f64, CoreError> {
        CreditMarket::wealth_gini(self)
    }
    fn spending_rates_sorted(&self, now: SimTime) -> Vec<f64> {
        CreditMarket::spending_rates_sorted(self, now)
    }
    fn gini_series(&self) -> &TimeSeries {
        CreditMarket::gini_series(self)
    }
    fn stall_series(&self) -> Option<&TimeSeries> {
        None
    }
    fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults_enabled()
            .then(|| CreditMarket::fault_stats(self))
    }
    fn in_flight_escrow(&self) -> u64 {
        CreditMarket::in_flight_escrow(self)
    }
    fn state_digest(&self) -> u64 {
        CreditMarket::state_digest(self)
    }
}

impl MarketView for StreamingSystem<CreditTradePolicy> {
    fn peer_count(&self) -> usize {
        StreamingSystem::peer_count(self)
    }
    fn purchases(&self) -> u64 {
        self.policy().settlements
    }
    fn denied(&self) -> u64 {
        self.policy().denials
    }
    fn total_spent(&self) -> u64 {
        self.policy().total_spent()
    }
    fn ledger(&self) -> &Ledger {
        self.policy().ledger()
    }
    fn taxation(&self) -> Option<&Taxation> {
        self.policy().taxation()
    }
    fn balances_sorted(&self) -> Vec<u64> {
        self.policy().balances_sorted()
    }
    fn wealth_gini(&self) -> Result<f64, CoreError> {
        self.policy().wealth_gini()
    }
    fn spending_rates_sorted(&self, now: SimTime) -> Vec<f64> {
        self.policy().spending_rates_sorted(now)
    }
    fn gini_series(&self) -> &TimeSeries {
        self.policy().gini_series()
    }
    fn stall_series(&self) -> Option<&TimeSeries> {
        Some(StreamingSystem::stall_series(self))
    }
    fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults_enabled()
            .then(|| StreamingSystem::fault_stats(self))
    }
    // `in_flight_escrow` stays 0: the streaming layer settles on
    // delivery, so no credits sit in trade escrow.
}

/// A pluggable observer over one market run.
///
/// Hooks fire **only at sampling boundaries** (never per simulator
/// event), so attaching probes cannot perturb the spend/trade hot
/// paths; see the [module docs](self) for the cost model. All hooks
/// have empty defaults except [`Probe::at_horizon`], where the probe
/// deposits whatever it measured into the [`Recorder`].
pub trait Probe: Send {
    /// Extra simulated instants (besides the regular sampling grid) at
    /// which this probe needs [`Probe::on_sample`] — e.g. wealth
    /// snapshot times. Queried once at [`Session::attach`].
    fn extra_stops(&self) -> Vec<SimTime> {
        Vec::new()
    }

    /// Called once at the start of the run, after the market has
    /// bootstrapped (time zero events processed).
    fn on_bootstrap(&mut self, view: &dyn MarketView) {
        let _ = view;
    }

    /// Batched settlement notification: how many purchases settled and
    /// how many were denied since the previous sampling boundary.
    /// Delivered immediately before [`Probe::on_sample`] at every stop —
    /// this is how throughput-style probes observe purchase flow without
    /// any per-event dispatch.
    fn on_settle(&mut self, now: SimTime, settled: u64, denied: u64) {
        let _ = (now, settled, denied);
    }

    /// Called at every sampling boundary: the market's
    /// `sample_interval` grid plus any [`Probe::extra_stops`] requested
    /// by an attached probe.
    fn on_sample(&mut self, now: SimTime, view: &dyn MarketView) {
        let _ = (now, view);
    }

    /// Called once when the session finishes: deposit measurements into
    /// the recorder.
    fn at_horizon(&mut self, now: SimTime, view: &dyn MarketView, rec: &mut Recorder);

    /// Serializes the probe's accumulated state for a
    /// [`Session::checkpoint`]. Stateless probes (the default) return an
    /// empty block; stateful probes must override this *and*
    /// [`Probe::restore_state`] so a resumed run reproduces the
    /// uninterrupted one byte for byte.
    fn snapshot_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state captured by [`Probe::snapshot_state`] during
    /// [`Session::resume`]. The default accepts only the empty block a
    /// stateless probe writes — resuming a stateful snapshot into a
    /// probe that cannot read it fails loudly.
    ///
    /// # Errors
    /// Returns [`CoreError::Checkpoint`] when the block cannot be
    /// decoded by this probe.
    fn restore_state(&mut self, state: &[u8]) -> Result<(), CoreError> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(CoreError::Checkpoint(
                "probe has checkpoint state but no restore_state implementation".into(),
            ))
        }
    }
}

/// The simulator behind a session: one of the two market granularities.
enum SessionSim {
    /// The queue-level spend-loop market.
    Queue(Simulation<CreditMarket>),
    /// The queue-level market partitioned over execution shards
    /// (`shards > 1`); output is byte-identical to [`SessionSim::Queue`].
    Sharded(Box<ShardedSimulation<ShardedMarket>>),
    /// The chunk-level streaming market.
    Chunk(Simulation<StreamingSystem<CreditTradePolicy>>),
}

/// The finished model a [`Session`] hands back, for callers that want
/// more than the [`RunRecord`] (e.g. the deprecated `run_market` /
/// `run_streaming_market` wrappers).
pub enum SessionModel {
    /// A finished queue-level market.
    Queue(CreditMarket),
    /// A finished chunk-level streaming market.
    Chunk(StreamingSystem<CreditTradePolicy>),
}

impl SessionModel {
    /// The queue-level market, if that is what ran.
    pub fn queue(self) -> Option<CreditMarket> {
        match self {
            SessionModel::Queue(market) => Some(market),
            SessionModel::Chunk(_) => None,
        }
    }

    /// The chunk-level streaming system, if that is what ran.
    pub fn chunk(self) -> Option<StreamingSystem<CreditTradePolicy>> {
        match self {
            SessionModel::Queue(_) => None,
            SessionModel::Chunk(system) => Some(system),
        }
    }
}

/// The first point where a replayed run departed from its recorded
/// trace — what `scrip-sim replay`/`bisect` report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceDivergence {
    /// Instant of the divergence.
    pub time: SimTime,
    /// Global sequence number of the divergent event ([`None`] when a
    /// digest frame at a sampling boundary caught the divergence).
    pub seq: Option<u64>,
    /// What the recorded trace expected (decoded, human-readable).
    pub expected: String,
    /// What the live re-execution produced.
    pub actual: String,
}

impl std::fmt::Display for TraceDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replay diverged at t={}µs", self.time.as_micros())?;
        if let Some(seq) = self.seq {
            write!(f, " seq={seq}")?;
        }
        write!(
            f,
            ": trace recorded {}, live run produced {}",
            self.expected, self.actual
        )
    }
}

fn trace_err(e: TraceError) -> CoreError {
    CoreError::Trace(e.to_string())
}

/// Renders a trace event payload for divergence reports.
fn describe_payload(payload: &[u8]) -> String {
    match MarketEvent::from_trace_payload(payload) {
        Ok(event) => format!("{event:?}"),
        Err(_) => format!("<{} undecodable payload bytes>", payload.len()),
    }
}

/// One sampling-boundary observation, handed to a [`SampleSink`] the
/// moment the boundary's probes have run. This is the incremental
/// (streaming) counterpart of the end-of-run [`RunRecord`]: a scalar
/// summary of the market at one boundary, cheap enough to emit at every
/// tick without touching the probe registry.
#[derive(Clone, Debug, PartialEq)]
pub struct LiveSample {
    /// The sampling-boundary instant.
    pub time: SimTime,
    /// Kernel events dispatched so far.
    pub events_processed: u64,
    /// Live peers at the boundary.
    pub peers: usize,
    /// Cumulative successful purchases.
    pub purchases: u64,
    /// Cumulative denied purchase attempts.
    pub denied: u64,
    /// Cumulative credits spent by live peers.
    pub total_spent: u64,
    /// Wealth Gini at the boundary — [`None`] when the market has no
    /// live peers to measure.
    pub wealth_gini: Option<f64>,
}

/// A consumer of per-boundary [`LiveSample`]s — the live-telemetry
/// counterpart of [`Probe`]. Sinks are transient observers: they carry
/// no checkpointed state, may be attached at any point (including to a
/// [`Session::resume`]d session), and never influence the simulation —
/// a session with a sink produces output byte-identical to one without.
pub trait SampleSink: Send {
    /// Called once per sampling boundary, after every probe has run.
    fn on_sample(&mut self, sample: &LiveSample);
}

impl<F: FnMut(&LiveSample) + Send> SampleSink for F {
    fn on_sample(&mut self, sample: &LiveSample) {
        self(sample)
    }
}

/// Trace state attached to a session: either recording the event
/// stream or verifying a live re-execution against a recorded one.
enum Tracer {
    /// Recording: every applied event becomes a frame, every sampling
    /// boundary a digest frame followed by a flush.
    Record {
        writer: TraceWriter<BufWriter<std::fs::File>>,
        /// Reused per-event encode buffer (no per-event allocation).
        scratch: snapshot::Writer,
        error: Option<TraceError>,
    },
    /// Verifying: each applied event must match the next recorded
    /// event frame, each shared boundary the recorded digest.
    Verify {
        reader: TraceReader,
        consumer: usize,
        scratch: snapshot::Writer,
        divergence: Option<TraceDivergence>,
        error: Option<TraceError>,
    },
}

impl Tracer {
    /// Whether tracing hit a terminal condition (I/O error or replay
    /// divergence) — the session stops running when this turns true.
    fn halted(&self) -> bool {
        match self {
            Tracer::Record { error, .. } => error.is_some(),
            Tracer::Verify {
                divergence, error, ..
            } => divergence.is_some() || error.is_some(),
        }
    }

    /// The per-event kernel tap: returning `false` vetoes the dispatch
    /// and freezes the simulation at the pre-event state.
    fn on_event(&mut self, time: SimTime, seq: u64, event: &MarketEvent) -> bool {
        match self {
            Tracer::Record {
                writer,
                scratch,
                error,
            } => {
                scratch.clear();
                event.encode(scratch);
                if let Err(e) = writer.event(time, seq, scratch.as_slice()) {
                    *error = Some(e);
                    return false;
                }
                true
            }
            Tracer::Verify {
                reader,
                consumer,
                scratch,
                divergence,
                error,
            } => {
                // Digest frames belong to boundaries; any still sitting
                // before the next event frame were taken at stops this
                // session does not share (e.g. probe extra stops during
                // a mid-run bisection) — skip them. Shared boundaries
                // consume their digest strictly in `on_boundary` before
                // the next event is tapped.
                loop {
                    match reader.peek_frame(*consumer) {
                        Ok(Some(TraceFrame::Digest { .. })) => {
                            let _ = reader.next_frame(*consumer);
                        }
                        Ok(_) => break,
                        Err(e) => {
                            *error = Some(e);
                            return false;
                        }
                    }
                }
                let frame = match reader.next_frame(*consumer) {
                    Ok(frame) => frame,
                    Err(e) => {
                        *error = Some(e);
                        return false;
                    }
                };
                scratch.clear();
                event.encode(scratch);
                let actual = format!("{event:?}");
                match frame {
                    Some(TraceFrame::Event {
                        time: rt,
                        seq: rs,
                        payload,
                    }) => {
                        if rt == time && rs == seq && payload.as_slice() == scratch.as_slice() {
                            return true;
                        }
                        *divergence = Some(TraceDivergence {
                            time,
                            seq: Some(seq),
                            expected: format!(
                                "{} at (t={}µs, seq={rs})",
                                describe_payload(&payload),
                                rt.as_micros()
                            ),
                            actual,
                        });
                        false
                    }
                    Some(TraceFrame::Digest { .. }) => unreachable!("digest frames skipped above"),
                    Some(TraceFrame::End { time: rt, .. }) => {
                        *divergence = Some(TraceDivergence {
                            time,
                            seq: Some(seq),
                            expected: format!(
                                "end of trace (recorded run finished at t={}µs)",
                                rt.as_micros()
                            ),
                            actual,
                        });
                        false
                    }
                    None => {
                        *divergence = Some(TraceDivergence {
                            time,
                            seq: Some(seq),
                            expected: "end of trace (recorded run produced no further events)"
                                .into(),
                            actual,
                        });
                        false
                    }
                }
            }
        }
    }

    /// The sampling-boundary hook: record a digest frame and flush, or
    /// strictly verify the recorded digest for this boundary.
    fn on_boundary(&mut self, now: SimTime, events_processed: u64, digest: u64) {
        match self {
            Tracer::Record { writer, error, .. } => {
                if error.is_some() {
                    return;
                }
                let outcome = writer
                    .digest(now, events_processed, digest)
                    .and_then(|()| writer.flush());
                if let Err(e) = outcome {
                    *error = Some(e);
                }
            }
            Tracer::Verify {
                reader,
                consumer,
                divergence,
                error,
                ..
            } => {
                if divergence.is_some() || error.is_some() {
                    return;
                }
                match reader.peek_frame(*consumer) {
                    Err(e) => *error = Some(e),
                    Ok(Some(TraceFrame::Digest {
                        time: rt,
                        events_processed: re,
                        digest: rd,
                    })) if rt == now => {
                        let _ = reader.next_frame(*consumer);
                        if re != events_processed || rd != digest {
                            *divergence = Some(TraceDivergence {
                                time: now,
                                seq: None,
                                expected: format!("digest {rd:#018x} after {re} events"),
                                actual: format!(
                                    "digest {digest:#018x} after {events_processed} events"
                                ),
                            });
                        }
                    }
                    Ok(Some(TraceFrame::Event {
                        time: rt,
                        seq: rs,
                        payload,
                    })) if rt <= now => {
                        // The recorded run applied more events by this
                        // boundary than the live run produced.
                        *divergence = Some(TraceDivergence {
                            time: rt,
                            seq: Some(rs),
                            expected: format!(
                                "{} at (t={}µs, seq={rs})",
                                describe_payload(&payload),
                                rt.as_micros()
                            ),
                            actual: format!(
                                "no further events by the boundary at t={}µs",
                                now.as_micros()
                            ),
                        });
                    }
                    // A boundary the recorded run did not stop at (or
                    // the trace ended at an earlier horizon): nothing
                    // recorded to check against.
                    Ok(_) => {}
                }
            }
        }
    }
}

/// One market run under observation: the unified entry point for both
/// granularities. See the [module docs](self) for the full picture and
/// an example.
pub struct Session {
    sim: SessionSim,
    probes: Vec<Box<dyn Probe>>,
    /// The root seed the market was built from — stored so a
    /// [`Session::checkpoint`] can rebuild the same derived RNG streams
    /// on [`Session::resume`].
    seed: u64,
    /// The sampling-grid spacing (the market's effective
    /// `sample_interval`).
    interval: SimDuration,
    /// Next regular sampling boundary.
    next_tick: SimTime,
    /// Pending extra stops from probes, ascending and deduplicated.
    stops: Vec<SimTime>,
    /// Purchase/denial counts at the previous boundary (for
    /// [`Probe::on_settle`] deltas).
    last_purchases: u64,
    last_denied: u64,
    started: bool,
    /// Attached trace recorder/verifier, if any. Boxed: sessions
    /// without one pay a single pointer of overhead.
    tracer: Option<Box<Tracer>>,
    /// Live telemetry sink, if any; fed one [`LiveSample`] per
    /// sampling boundary. Never checkpointed — sinks are transient
    /// observers re-attached by the caller after a resume.
    sink: Option<Box<dyn SampleSink>>,
}

impl Session {
    /// Builds a session from any market configuration: a config whose
    /// [`MarketConfig::streaming`] is set runs at chunk granularity
    /// through the protocol stack, one with [`MarketConfig::shards`]
    /// `> 1` runs the queue-level market on the sharded kernel
    /// (byte-identical output, sampling boundaries double as window
    /// barriers), everything else runs the queue-level
    /// spend loop. The simulation is pre-sized
    /// (`queue_capacity_hint`) and its bootstrap event scheduled; call
    /// [`Session::attach`] before [`Session::run_until`].
    ///
    /// # Errors
    /// Returns [`CoreError`] for invalid configurations or topology
    /// failures.
    pub fn from_config(config: &MarketConfig, seed: u64) -> Result<Session, CoreError> {
        let (sim, interval) = if config.streaming.is_some() {
            let system = build_streaming_market(config, seed)?;
            let interval = system
                .config()
                .sample_interval
                .unwrap_or(config.sample_interval);
            let profile = system.queue_profile();
            let mut sim = Simulation::with_profile(system, profile);
            sim.schedule(SimTime::ZERO, StreamEvent::Bootstrap);
            (SessionSim::Chunk(sim), interval)
        } else if config.shards > 1 {
            // Sharded execution: the same market on the windowed
            // kernel, with the sampling grid as the tick-window width
            // so sampling boundaries are shard barriers.
            let market = CreditMarket::build(config.clone(), seed)?;
            let interval = config.sample_interval;
            let profile = market.queue_profile();
            let mut sim = ShardedSimulation::with_profile(
                ShardedMarket::new(market, config.shards),
                interval,
                profile,
            );
            sim.schedule(SimTime::ZERO, MarketEvent::Bootstrap);
            (SessionSim::Sharded(Box::new(sim)), interval)
        } else {
            let market = CreditMarket::build(config.clone(), seed)?;
            let interval = config.sample_interval;
            let profile = market.queue_profile();
            let mut sim = Simulation::with_profile(market, profile);
            sim.schedule(SimTime::ZERO, MarketEvent::Bootstrap);
            (SessionSim::Queue(sim), interval)
        };
        Ok(Session {
            sim,
            probes: Vec::new(),
            seed,
            interval,
            next_tick: SimTime::ZERO + interval,
            stops: Vec::new(),
            last_purchases: 0,
            last_denied: 0,
            started: false,
            tracer: None,
            sink: None,
        })
    }

    /// Attaches a live telemetry sink, replacing any previous one: from
    /// here on every sampling boundary hands it a [`LiveSample`] right
    /// after the boundary's probes run. Unlike [`Session::attach`] this
    /// is legal at any point in the run — including on a resumed
    /// session — because sinks observe without participating: the
    /// simulation's output is byte-identical with or without one.
    pub fn stream_samples_to(&mut self, sink: Box<dyn SampleSink>) {
        self.sink = Some(sink);
    }

    /// Attaches a probe. Its [`Probe::extra_stops`] are merged into the
    /// session's stop schedule.
    ///
    /// # Panics
    /// Panics if the session has already started running — probes must
    /// observe the run from the beginning.
    pub fn attach(&mut self, probe: Box<dyn Probe>) {
        assert!(
            !self.started,
            "attach probes before the first run_until call"
        );
        self.stops.extend(probe.extra_stops());
        self.stops.sort_unstable();
        self.stops.dedup();
        self.probes.push(probe);
    }

    /// Number of attached probes.
    pub fn probe_count(&self) -> usize {
        self.probes.len()
    }

    /// The current simulation clock.
    pub fn now(&self) -> SimTime {
        match &self.sim {
            SessionSim::Queue(sim) => sim.now(),
            SessionSim::Sharded(sim) => sim.now(),
            SessionSim::Chunk(sim) => sim.now(),
        }
    }

    /// Kernel counters for the run so far (events processed/pending).
    pub fn stats(&self) -> RunStats {
        match &self.sim {
            SessionSim::Queue(sim) => sim.stats(),
            SessionSim::Sharded(sim) => sim.stats(),
            SessionSim::Chunk(sim) => sim.stats(),
        }
    }

    /// The observable market state, at either granularity.
    pub fn view(&self) -> &dyn MarketView {
        match &self.sim {
            SessionSim::Queue(sim) => sim.model(),
            SessionSim::Sharded(sim) => sim.model().market(),
            SessionSim::Chunk(sim) => sim.model(),
        }
    }

    fn sim_run_until(&mut self, t: SimTime) {
        let tracer = self.tracer.as_deref_mut();
        match &mut self.sim {
            SessionSim::Queue(sim) => {
                if let Some(tracer) = tracer {
                    sim.run_until_traced(t, &mut |time, seq, event| {
                        tracer.on_event(time, seq, event)
                    });
                } else {
                    sim.run_until(t);
                }
            }
            SessionSim::Sharded(sim) => {
                if let Some(tracer) = tracer {
                    sim.run_until_traced(t, &mut |time, seq, event| {
                        tracer.on_event(time, seq, event)
                    });
                } else {
                    sim.run_until(t);
                }
            }
            SessionSim::Chunk(sim) => {
                sim.run_until(t);
            }
        }
    }

    /// Whether tracing hit a terminal condition (I/O error or replay
    /// divergence); the session freezes at the pre-event state until
    /// [`Session::finish_trace`] reports the cause.
    fn trace_halted(&self) -> bool {
        self.tracer.as_deref().is_some_and(Tracer::halted)
    }

    /// Emits (or verifies) the state-digest frame for boundary `now`.
    /// No-op without a tracer.
    fn trace_boundary(&mut self, now: SimTime) {
        if self.tracer.is_none() {
            return;
        }
        let digest = self.view().state_digest();
        let events_processed = self.stats().events_processed;
        if let Some(tracer) = self.tracer.as_deref_mut() {
            tracer.on_boundary(now, events_processed, digest);
        }
    }

    /// Delivers `on_settle` + `on_sample` to every probe at boundary
    /// `now`.
    fn dispatch_sample(&mut self, now: SimTime) {
        let events_processed = self.stats().events_processed;
        let view: &dyn MarketView = match &self.sim {
            SessionSim::Queue(sim) => sim.model(),
            SessionSim::Sharded(sim) => sim.model().market(),
            SessionSim::Chunk(sim) => sim.model(),
        };
        let purchases = view.purchases();
        let denied = view.denied();
        let settled_delta = purchases - self.last_purchases;
        let denied_delta = denied - self.last_denied;
        self.last_purchases = purchases;
        self.last_denied = denied;
        for probe in &mut self.probes {
            probe.on_settle(now, settled_delta, denied_delta);
            probe.on_sample(now, view);
        }
        if let Some(sink) = &mut self.sink {
            sink.on_sample(&LiveSample {
                time: now,
                events_processed,
                peers: view.peer_count(),
                purchases,
                denied,
                total_spent: view.total_spent(),
                wealth_gini: view.wealth_gini().ok(),
            });
        }
    }

    /// Processes the time-zero events (bootstrap) and delivers
    /// [`Probe::on_bootstrap`], exactly once.
    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        // No digest frame at time zero: the serial kernel applies the
        // bootstrap event inside this call while the sharded kernel
        // defers it to the first window, so a t = 0 digest would sit at
        // different stream positions per kernel and break cross-shard
        // trace identity. Bisection anchors on a fresh session instead.
        self.sim_run_until(SimTime::ZERO);
        if self.trace_halted() {
            return;
        }
        let view: &dyn MarketView = match &self.sim {
            SessionSim::Queue(sim) => sim.model(),
            SessionSim::Sharded(sim) => sim.model().market(),
            SessionSim::Chunk(sim) => sim.model(),
        };
        self.last_purchases = view.purchases();
        self.last_denied = view.denied();
        for probe in &mut self.probes {
            probe.on_bootstrap(view);
        }
        // Extra stops at time zero (e.g. a snapshot at t = 0) fire right
        // after bootstrap.
        while self.stops.first() == Some(&SimTime::ZERO) {
            self.stops.remove(0);
            self.dispatch_sample(SimTime::ZERO);
        }
    }

    /// Advances the simulation to `horizon` (inclusive), stopping at
    /// every sampling boundary in between to dispatch probe hooks. With
    /// no probes attached this is a single uninterrupted `run_until` —
    /// zero overhead over driving the simulator directly. May be called
    /// repeatedly with increasing horizons.
    pub fn run_until(&mut self, horizon: SimTime) {
        if self.probes.is_empty() && self.tracer.is_none() && self.sink.is_none() {
            self.started = true;
            self.sim_run_until(horizon);
            // Keep the sampling grid aligned with the clock: a later
            // consumer (a checkpoint resumed with a sink attached, say)
            // must not observe phantom boundaries the fast path skipped.
            while self.next_tick <= self.now() {
                self.next_tick += self.interval;
            }
            return;
        }
        self.ensure_started();
        while self.now() < horizon && !self.trace_halted() {
            let mut stop = horizon;
            if self.next_tick <= stop {
                stop = self.next_tick;
            }
            if let Some(&extra) = self.stops.first() {
                if extra > self.now() && extra <= stop {
                    stop = extra;
                }
            }
            self.sim_run_until(stop);
            if self.trace_halted() {
                return;
            }
            // Every stop — tick, extra, or horizon — is a sampling
            // boundary, so record/verify its state digest.
            self.trace_boundary(stop);
            if self.trace_halted() {
                return;
            }
            let is_tick = stop == self.next_tick;
            let is_extra = self.stops.first() == Some(&stop);
            if is_tick || is_extra {
                if is_tick {
                    self.next_tick += self.interval;
                }
                if is_extra {
                    self.stops.remove(0);
                }
                self.dispatch_sample(stop);
            }
        }
    }

    /// The configuration fingerprint stored in trace headers. Unlike
    /// the checkpoint fingerprint this normalizes `shards` away: the
    /// event stream is execution-strategy independent (a pinned
    /// invariant), so a trace recorded at any shard count replays at
    /// any other.
    fn trace_config_fingerprint(&self) -> Result<u64, CoreError> {
        let config = match &self.sim {
            SessionSim::Queue(sim) => sim.model().config(),
            SessionSim::Sharded(sim) => sim.model().market().config(),
            SessionSim::Chunk(_) => {
                return Err(CoreError::Trace(
                    "chunk-level (streaming) sessions cannot record or replay event traces".into(),
                ));
            }
        };
        let mut canonical = config.clone();
        canonical.shards = 1;
        Ok(snapshot::fingerprint(format!("{canonical:?}").as_bytes()))
    }

    /// Starts recording this session's event stream to `path` in the
    /// `SCRIPTRC` format ([`scrip_des::trace`]): one frame per applied
    /// event, keyed by its `(time, seq)` identity, plus a state-digest
    /// frame at every sampling boundary. Frames are buffered and
    /// flushed at boundaries; [`Session::finish_trace`] completes the
    /// file. Traces are execution-strategy independent — recording the
    /// same scenario serially or sharded produces byte-identical files.
    ///
    /// # Errors
    /// Returns [`CoreError::Trace`] if the session already started, is
    /// chunk-level (streaming), already has a tracer attached, or the
    /// file cannot be created.
    pub fn record_to(&mut self, path: &Path) -> Result<(), CoreError> {
        if self.started {
            return Err(CoreError::Trace(
                "start recording before the first run_until call".into(),
            ));
        }
        if self.tracer.is_some() {
            return Err(CoreError::Trace(
                "session already has a tracer attached".into(),
            ));
        }
        let fingerprint = self.trace_config_fingerprint()?;
        let file = std::fs::File::create(path)
            .map_err(|e| CoreError::Trace(format!("create {}: {e}", path.display())))?;
        let writer = TraceWriter::new(
            BufWriter::new(file),
            TraceHeader {
                fingerprint,
                seed: self.seed,
            },
        );
        self.tracer = Some(Box::new(Tracer::Record {
            writer,
            scratch: snapshot::Writer::default(),
            error: None,
        }));
        Ok(())
    }

    /// Re-executes this session against the trace at `path`,
    /// fail-closed: every applied event must match the recorded frame
    /// byte for byte and every shared sampling boundary the recorded
    /// state digest. On the first mismatch the run freezes at the
    /// pre-event state ([`Session::trace_divergence`] has the details;
    /// [`Session::finish_trace`] returns them as an error).
    ///
    /// # Errors
    /// Returns [`CoreError::Trace`] for unreadable/corrupt trace files,
    /// a header (configuration or seed) mismatch, or a session that
    /// already started.
    pub fn replay_from(&mut self, path: &Path) -> Result<(), CoreError> {
        if self.started {
            return Err(CoreError::Trace(
                "attach a replay before the first run_until call".into(),
            ));
        }
        let reader = TraceReader::from_path(path).map_err(trace_err)?;
        self.replay_resume(reader)
    }

    /// Attaches replay verification to a session positioned mid-run —
    /// a [`Session::resume`]d checkpoint during divergence bisection.
    /// Event frames already covered by the session's processed-event
    /// count are skipped, along with digest frames at or before its
    /// clock; every further event is then verified as in
    /// [`Session::replay_from`].
    ///
    /// # Errors
    /// Returns [`CoreError::Trace`] on a header mismatch, an already
    /// attached tracer, or a trace shorter than the session's position.
    pub fn replay_resume(&mut self, mut reader: TraceReader) -> Result<(), CoreError> {
        if self.tracer.is_some() {
            return Err(CoreError::Trace(
                "session already has a tracer attached".into(),
            ));
        }
        let fingerprint = self.trace_config_fingerprint()?;
        let header = *reader.header();
        if header.fingerprint != fingerprint {
            return Err(CoreError::Trace(
                "configuration mismatch: trace was recorded under a different scenario".into(),
            ));
        }
        if header.seed != self.seed {
            return Err(CoreError::Trace(format!(
                "seed mismatch: trace was recorded with seed {}, session runs seed {}",
                header.seed, self.seed
            )));
        }
        let consumer = reader.register_consumer();
        let target = self.stats().events_processed;
        let now = self.now();
        let mut skipped = 0u64;
        loop {
            match reader.peek_frame(consumer).map_err(trace_err)? {
                Some(TraceFrame::Event { .. }) if skipped < target => {
                    skipped += 1;
                    reader.next_frame(consumer).map_err(trace_err)?;
                }
                Some(TraceFrame::Digest { time, .. }) if time <= now && skipped < target => {
                    reader.next_frame(consumer).map_err(trace_err)?;
                }
                _ => break,
            }
        }
        if skipped != target {
            return Err(CoreError::Trace(format!(
                "trace too short to verify from here: it holds {skipped} events up to the \
                 session clock, the session has already applied {target}"
            )));
        }
        // Digest frames for boundaries at or before the clock (e.g. the
        // boundary this session checkpointed at) are already covered.
        while let Some(TraceFrame::Digest { time, .. }) =
            reader.peek_frame(consumer).map_err(trace_err)?
        {
            if time > now {
                break;
            }
            reader.next_frame(consumer).map_err(trace_err)?;
        }
        self.tracer = Some(Box::new(Tracer::Verify {
            reader,
            consumer,
            scratch: snapshot::Writer::default(),
            divergence: None,
            error: None,
        }));
        Ok(())
    }

    /// The first divergence a replaying session found, if any. The
    /// simulation is frozen at the pre-event state of the divergent
    /// `(time, seq)`.
    pub fn trace_divergence(&self) -> Option<&TraceDivergence> {
        match self.tracer.as_deref() {
            Some(Tracer::Verify { divergence, .. }) => divergence.as_ref(),
            _ => None,
        }
    }

    /// Completes and detaches the session's trace. A recording is
    /// flushed and closed; a verification must have consumed the whole
    /// recorded event stream without divergence. A session with no
    /// tracer attached returns `Ok(())`.
    ///
    /// # Errors
    /// Returns [`CoreError::Trace`] on recording I/O failure, on the
    /// divergence a replay halted at, or when the recorded run
    /// continued past this one's horizon.
    pub fn finish_trace(&mut self) -> Result<(), CoreError> {
        let close_at = self.now();
        let events_processed = self.stats().events_processed;
        match self.tracer.take().map(|boxed| *boxed) {
            None => Ok(()),
            Some(Tracer::Record {
                mut writer, error, ..
            }) => {
                if let Some(e) = error {
                    return Err(trace_err(e));
                }
                // Close the log with an end frame so tailing consumers
                // can tell "run over" from "writer between flushes".
                writer.end(close_at, events_processed).map_err(trace_err)?;
                writer.finish().map(|_| ()).map_err(trace_err)
            }
            Some(Tracer::Verify {
                mut reader,
                consumer,
                divergence,
                error,
                ..
            }) => {
                if let Some(e) = error {
                    return Err(trace_err(e));
                }
                if let Some(d) = divergence {
                    return Err(CoreError::Trace(d.to_string()));
                }
                // Anything left must be boundary digests from stops
                // this session did not share; leftover event frames
                // mean the recorded run kept going past this one.
                while let Some(frame) = reader.next_frame(consumer).map_err(trace_err)? {
                    if let TraceFrame::Event { time, seq, payload } = frame {
                        return Err(CoreError::Trace(format!(
                            "recorded run continued past this one: next recorded event {} at \
                             (t={}µs, seq={seq})",
                            describe_payload(&payload),
                            time.as_micros()
                        )));
                    }
                }
                Ok(())
            }
        }
    }

    /// Serializes the complete session state — RNG streams, market
    /// (graph, arena, ledger, escrow, pricing, fault plan), every
    /// pending event with its `(time, seq)` identity, the sampling
    /// schedule, and each probe's accumulated state — into one binary
    /// snapshot. Resuming it with [`Session::resume`] and running to the
    /// horizon produces output byte-identical to never having stopped.
    ///
    /// Checkpoint at a quiescent instant: after a [`Session::run_until`]
    /// call, so no event at or before the clock is still pending.
    ///
    /// # Errors
    /// Returns [`CoreError::Checkpoint`] for sharded (`shards > 1`) and
    /// chunk-level (streaming) sessions, which do not support
    /// checkpointing yet.
    pub fn checkpoint(&self) -> Result<Vec<u8>, CoreError> {
        let sim = match &self.sim {
            SessionSim::Queue(sim) => sim,
            SessionSim::Sharded(_) => {
                return Err(CoreError::Checkpoint(
                    "sharded sessions (shards > 1) cannot checkpoint; run with shards = 1".into(),
                ));
            }
            SessionSim::Chunk(_) => {
                return Err(CoreError::Checkpoint(
                    "chunk-level (streaming) sessions cannot checkpoint".into(),
                ));
            }
        };
        let market = sim.model();
        let mut w = snapshot::Writer::with_header();
        let config_repr = format!("{:?}", market.config());
        w.put_u64(snapshot::fingerprint(config_repr.as_bytes()));
        w.put_u64(self.seed);
        w.put_u64(sim.now().as_micros());
        w.put_u64(sim.stats().events_processed);
        let pending = sim.scheduler().snapshot_events();
        w.put_u64(pending.len() as u64);
        for scheduled in &pending {
            w.put_u64(scheduled.time.as_micros());
            w.put_u64(scheduled.seq);
            scheduled.event.encode(&mut w);
        }
        market.write_state(&mut w);
        w.put_u64(self.interval.as_micros());
        w.put_u64(self.next_tick.as_micros());
        w.put_u64(self.stops.len() as u64);
        for stop in &self.stops {
            w.put_u64(stop.as_micros());
        }
        w.put_u64(self.last_purchases);
        w.put_u64(self.last_denied);
        w.put_bool(self.started);
        w.put_u64(self.probes.len() as u64);
        for probe in &self.probes {
            w.put_bytes(&probe.snapshot_state());
        }
        Ok(w.into_bytes())
    }

    /// Rebuilds a session from a [`Session::checkpoint`] snapshot.
    ///
    /// `config` must be the configuration the checkpointed session was
    /// built from (checked against a fingerprint in the snapshot), and
    /// `probes` must be the same probes in the same order — their
    /// accumulated state is restored from the snapshot, so pass freshly
    /// constructed instances. Running the resumed session to the horizon
    /// and finishing it reproduces the uninterrupted run byte for byte.
    ///
    /// # Errors
    /// Returns [`CoreError::Checkpoint`] for corrupt or truncated
    /// snapshots, a configuration or probe-count mismatch, or a snapshot
    /// written by an incompatible format version.
    pub fn resume(
        config: &MarketConfig,
        mut probes: Vec<Box<dyn Probe>>,
        bytes: &[u8],
    ) -> Result<Session, CoreError> {
        let mut r = snapshot::Reader::with_header(bytes)?;
        let stored_fingerprint = r.take_u64()?;
        let config_repr = format!("{config:?}");
        if stored_fingerprint != snapshot::fingerprint(config_repr.as_bytes()) {
            return Err(CoreError::Checkpoint(
                "configuration mismatch: snapshot was taken under a different scenario".into(),
            ));
        }
        let seed = r.take_u64()?;
        let clock = SimTime::from_micros(r.take_u64()?);
        let events_processed = r.take_u64()?;
        let pending_len = r.take_u64()?;
        let mut pending = Vec::with_capacity(pending_len as usize);
        for _ in 0..pending_len {
            let time = SimTime::from_micros(r.take_u64()?);
            let seq = r.take_u64()?;
            let event = MarketEvent::decode(&mut r)?;
            pending.push(Scheduled { time, seq, event });
        }
        let mut market = CreditMarket::build(config.clone(), seed)?;
        market.read_state(&mut r)?;
        let interval = SimDuration::from_micros(r.take_u64()?);
        let next_tick = SimTime::from_micros(r.take_u64()?);
        let stops_len = r.take_u64()?;
        let mut stops = Vec::with_capacity(stops_len as usize);
        for _ in 0..stops_len {
            stops.push(SimTime::from_micros(r.take_u64()?));
        }
        let last_purchases = r.take_u64()?;
        let last_denied = r.take_u64()?;
        let started = r.take_bool()?;
        let probe_count = r.take_u64()?;
        if probe_count != probes.len() as u64 {
            return Err(CoreError::Checkpoint(format!(
                "snapshot has {probe_count} probes, resume was given {}",
                probes.len()
            )));
        }
        for probe in &mut probes {
            let state = r.take_bytes()?;
            probe.restore_state(state)?;
        }
        r.finish()?;
        // A plain heap backend: restored runs pop the identical
        // `(time, seq)` sequence on either backend (a pinned invariant),
        // and the heap needs no cursor advance from time zero.
        let mut scheduler = Scheduler::with_capacity(pending.len() + market.queue_capacity_hint());
        scheduler.restore_clock(clock);
        for scheduled in pending {
            scheduler.enqueue_scheduled(scheduled);
        }
        let sim = Simulation::from_parts(market, scheduler, events_processed);
        Ok(Session {
            sim: SessionSim::Queue(sim),
            probes,
            seed,
            interval,
            next_tick,
            stops,
            last_purchases,
            last_denied,
            started,
            tracer: None,
            sink: None,
        })
    }

    /// Finishes the run: every probe's [`Probe::at_horizon`] deposits
    /// into the record, the session adds the core counters
    /// ([`ids::PURCHASES`], [`ids::DENIED`], [`ids::TOTAL_SPENT`],
    /// [`ids::PEER_COUNT`], [`ids::WEALTH_GINI`] — absent when no peers
    /// remain — [`ids::TAX_COLLECTED`], [`ids::TAX_REDISTRIBUTED`]), and
    /// the finished model is handed back alongside.
    pub fn finish(mut self) -> (RunRecord, SessionModel) {
        let now = self.now();
        let mut recorder = Recorder::default();
        {
            let view: &dyn MarketView = match &self.sim {
                SessionSim::Queue(sim) => sim.model(),
                SessionSim::Sharded(sim) => sim.model().market(),
                SessionSim::Chunk(sim) => sim.model(),
            };
            recorder.record(ids::PURCHASES, MetricValue::Counter(view.purchases()));
            recorder.record(ids::DENIED, MetricValue::Counter(view.denied()));
            recorder.record(ids::TOTAL_SPENT, MetricValue::Counter(view.total_spent()));
            recorder.record(
                ids::PEER_COUNT,
                MetricValue::Counter(view.peer_count() as u64),
            );
            if let Ok(gini) = view.wealth_gini() {
                recorder.record(ids::WEALTH_GINI, MetricValue::Scalar(gini));
            }
            let (collected, redistributed) = view
                .taxation()
                .map_or((0, 0), |t| (t.collected, t.redistributed));
            recorder.record(ids::TAX_COLLECTED, MetricValue::Counter(collected));
            recorder.record(ids::TAX_REDISTRIBUTED, MetricValue::Counter(redistributed));
            for probe in &mut self.probes {
                probe.at_horizon(now, view, &mut recorder);
            }
        }
        let model = match self.sim {
            SessionSim::Queue(sim) => SessionModel::Queue(sim.into_model()),
            SessionSim::Sharded(sim) => SessionModel::Queue(sim.into_model().into_market()),
            SessionSim::Chunk(sim) => SessionModel::Chunk(sim.into_model()),
        };
        (recorder.finish(), model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::run_market;
    use scrip_streaming::StreamingConfig;

    /// A probe exercising every hook: counts dispatches and checks the
    /// view is usable from each.
    struct CountingProbe {
        bootstraps: u32,
        samples: Vec<SimTime>,
        settled_total: u64,
        denied_total: u64,
    }

    impl CountingProbe {
        fn new() -> Self {
            CountingProbe {
                bootstraps: 0,
                samples: Vec::new(),
                settled_total: 0,
                denied_total: 0,
            }
        }
    }

    impl Probe for CountingProbe {
        fn extra_stops(&self) -> Vec<SimTime> {
            vec![SimTime::from_secs(42)]
        }
        fn on_bootstrap(&mut self, view: &dyn MarketView) {
            self.bootstraps += 1;
            assert!(view.peer_count() > 0);
        }
        fn on_settle(&mut self, _now: SimTime, settled: u64, denied: u64) {
            self.settled_total += settled;
            self.denied_total += denied;
        }
        fn on_sample(&mut self, now: SimTime, view: &dyn MarketView) {
            assert!(view.ledger().conserved());
            self.samples.push(now);
        }
        fn at_horizon(&mut self, now: SimTime, view: &dyn MarketView, rec: &mut Recorder) {
            assert_eq!(now, *self.samples.last().expect("sampled"));
            rec.record("bootstraps", MetricValue::Counter(self.bootstraps.into()));
            rec.record("settled", MetricValue::Counter(self.settled_total));
            rec.record(
                "sample-count",
                MetricValue::Counter(self.samples.len() as u64),
            );
            let _ = view;
        }
    }

    #[test]
    fn session_dispatches_hooks_at_boundaries_only() {
        let config = MarketConfig::new(30, 20);
        let mut session = Session::from_config(&config, 5).expect("builds");
        session.attach(Box::new(CountingProbe::new()));
        session.run_until(SimTime::from_secs(500));
        let (record, model) = session.finish();
        assert_eq!(record.counter("bootstraps"), 1);
        // 5 regular ticks (100..=500) + the extra stop at 42.
        assert_eq!(record.counter("sample-count"), 6);
        // The settle deltas sum to the final purchase counter.
        assert_eq!(record.counter("settled"), record.counter(ids::PURCHASES));
        assert!(record.counter(ids::PURCHASES) > 0);
        assert!(model.queue().is_some());
    }

    #[test]
    fn session_reproduces_run_market_exactly() {
        let config = MarketConfig::new(40, 20);
        let horizon = SimTime::from_secs(1_000);
        let direct = run_market(config.clone(), 9, horizon).expect("runs");

        // Detached session.
        let mut session = Session::from_config(&config, 9).expect("builds");
        session.run_until(horizon);
        let (record, model) = session.finish();
        let market = model.queue().expect("queue config");
        assert_eq!(market.balances_sorted(), direct.balances_sorted());
        assert_eq!(record.counter(ids::PURCHASES), direct.purchases());

        // Attached session: probes observe, results stay bit-identical.
        let mut observed = Session::from_config(&config, 9).expect("builds");
        observed.attach(Box::new(CountingProbe::new()));
        observed.run_until(horizon);
        let (orec, omodel) = observed.finish();
        let omarket = omodel.queue().expect("queue config");
        assert_eq!(omarket.balances_sorted(), direct.balances_sorted());
        assert_eq!(omarket.gini_series(), direct.gini_series());
        assert_eq!(orec.counter(ids::PURCHASES), direct.purchases());
    }

    #[test]
    fn sharded_sessions_reproduce_serial_sessions_exactly() {
        let config = MarketConfig::new(40, 20);
        let horizon = SimTime::from_secs(1_000);
        let direct = run_market(config.clone(), 9, horizon).expect("runs");
        for shards in [2, 4] {
            let sharded_config = config.clone().shards(shards);
            // Probe-less session.
            let mut session = Session::from_config(&sharded_config, 9).expect("builds");
            session.run_until(horizon);
            let (record, model) = session.finish();
            let market = model.queue().expect("sharded configs yield queue models");
            assert_eq!(market.balances_sorted(), direct.balances_sorted());
            assert_eq!(market.gini_series(), direct.gini_series());
            assert_eq!(record.counter(ids::PURCHASES), direct.purchases());
            // Probes attached: boundaries are window barriers; results
            // stay bit-identical.
            let mut observed = Session::from_config(&sharded_config, 9).expect("builds");
            observed.attach(Box::new(CountingProbe::new()));
            observed.run_until(horizon);
            let (orec, omodel) = observed.finish();
            let omarket = omodel.queue().expect("queue model");
            assert_eq!(omarket.balances_sorted(), direct.balances_sorted());
            assert_eq!(orec.counter("sample-count"), 11); // 10 ticks + stop at 42
        }
    }

    #[test]
    fn session_runs_chunk_level_configs() {
        let config = MarketConfig::new(30, 40)
            .streaming_market(StreamingConfig::market_paced(1.0))
            .sample_interval(SimDuration::from_secs(25));
        let mut session = Session::from_config(&config, 21).expect("builds");
        session.attach(Box::new(CountingProbe::new()));
        session.run_until(SimTime::from_secs(150));
        let (record, model) = session.finish();
        let system = model.chunk().expect("chunk config");
        assert!(record.counter(ids::PURCHASES) > 100, "settlements recorded");
        assert_eq!(
            record.counter(ids::PURCHASES),
            system.policy().settlements,
            "view and model agree"
        );
        assert!(system.stall_series().len() >= 6);
        // 150 / 25 = 6 regular ticks + extra stop at 42.
        assert_eq!(record.counter("sample-count"), 7);
    }

    #[test]
    fn finish_skips_wealth_gini_for_empty_markets() {
        // A market whose every peer departs before the horizon.
        use crate::market::{ChurnConfig, TopologyKind};
        let config = MarketConfig::new(4, 5)
            .topology(TopologyKind::Complete)
            .churn(ChurnConfig::new(1e-9, 0.5, 1).expect("valid"))
            .sample_interval(SimDuration::from_secs(10));
        let mut session = Session::from_config(&config, 3).expect("builds");
        session.run_until(SimTime::from_secs(5_000));
        let (record, _) = session.finish();
        if record.counter(ids::PEER_COUNT) == 0 {
            assert!(record.get(ids::WEALTH_GINI).is_none());
        }
    }

    #[test]
    fn record_accessors_default_on_absence_and_type_mismatch() {
        let mut rec = Recorder::default();
        rec.record("a-series", MetricValue::Series(vec![(1.0, 2.0)]));
        rec.record("a-count", MetricValue::Counter(7));
        let record = rec.finish();
        assert_eq!(record.series("a-series"), &[(1.0, 2.0)]);
        assert_eq!(record.counter("a-count"), 7);
        assert!(record.series("missing").is_empty());
        assert!(record.series("a-count").is_empty(), "type mismatch");
        assert_eq!(record.counter("a-series"), 0, "type mismatch");
        assert!(record.scalar("missing").is_nan());
        assert_eq!(record.ids().collect::<Vec<_>>(), ["a-series", "a-count"]);
    }

    #[test]
    #[should_panic(expected = "duplicate metric id")]
    fn duplicate_metric_ids_panic() {
        let mut rec = Recorder::default();
        rec.record("x", MetricValue::Counter(1));
        rec.record("x", MetricValue::Counter(2));
    }

    #[test]
    #[should_panic(expected = "attach probes before")]
    fn attach_after_start_panics() {
        let config = MarketConfig::new(10, 5);
        let mut session = Session::from_config(&config, 1).expect("builds");
        session.run_until(SimTime::from_secs(10));
        session.attach(Box::new(CountingProbe::new()));
    }

    /// The standard probe set for checkpoint tests — every stateful
    /// built-in probe, so resume must reproduce all their state.
    fn checkpoint_probes() -> Vec<Box<dyn Probe>> {
        vec![
            Box::new(probes::GiniSeriesProbe),
            Box::new(probes::SnapshotsProbe::new(vec![150, 700])),
            Box::new(probes::ThroughputSeriesProbe::new()),
            Box::new(probes::PopulationSeriesProbe::new()),
            Box::new(probes::FaultSeriesProbe::new()),
        ]
    }

    fn straight_run(config: &MarketConfig, seed: u64, horizon: SimTime) -> (RunRecord, Vec<u64>) {
        let mut session = Session::from_config(config, seed).expect("builds");
        for probe in checkpoint_probes() {
            session.attach(probe);
        }
        session.run_until(horizon);
        let (record, model) = session.finish();
        let market = model.queue().expect("queue config");
        (record, market.balances_sorted())
    }

    fn resumed_run(
        config: &MarketConfig,
        seed: u64,
        stop: SimTime,
        horizon: SimTime,
    ) -> (RunRecord, Vec<u64>) {
        let mut session = Session::from_config(config, seed).expect("builds");
        for probe in checkpoint_probes() {
            session.attach(probe);
        }
        session.run_until(stop);
        let bytes = session.checkpoint().expect("checkpoints");
        drop(session);
        let mut resumed = Session::resume(config, checkpoint_probes(), &bytes).expect("resumes");
        // A checkpoint of the freshly resumed session reproduces the
        // original snapshot bit for bit.
        assert_eq!(resumed.checkpoint().expect("re-checkpoints"), bytes);
        resumed.run_until(horizon);
        let (record, model) = resumed.finish();
        let market = model.queue().expect("queue config");
        (record, market.balances_sorted())
    }

    #[test]
    fn resume_is_byte_identical_to_uninterrupted_run() {
        let config = MarketConfig::new(40, 20)
            .churn(crate::market::ChurnConfig::new(0.4, 300.0, 10).expect("valid"))
            .sample_interval(SimDuration::from_secs(100));
        let horizon = SimTime::from_secs(1_000);
        let (direct, balances) = straight_run(&config, 23, horizon);
        for stop_secs in [100, 450, 1_000] {
            let (resumed, rbalances) =
                resumed_run(&config, 23, SimTime::from_secs(stop_secs), horizon);
            assert_eq!(resumed, direct, "diverged after resume at {stop_secs}s");
            assert_eq!(rbalances, balances);
        }
    }

    #[test]
    fn resume_is_byte_identical_under_an_active_fault_plan() {
        let spec = scrip_des::FaultSpec {
            drop_rate: 0.10,
            defect_rate: 0.05,
            delay_rate: 0.05,
            crash_fraction: 0.10,
            onset: SimTime::from_secs(50),
            ..scrip_des::FaultSpec::default()
        };
        let config = MarketConfig::new(50, 30)
            .topology(crate::market::TopologyKind::Complete)
            .faults(spec)
            .sample_interval(SimDuration::from_secs(100));
        let horizon = SimTime::from_secs(1_000);
        let (direct, balances) = straight_run(&config, 77, horizon);
        assert!(
            direct.counter(ids::FAULT_DROPPED) > 0,
            "fault plan was active"
        );
        for stop_secs in [60, 500] {
            let (resumed, rbalances) =
                resumed_run(&config, 77, SimTime::from_secs(stop_secs), horizon);
            assert_eq!(resumed, direct, "diverged after resume at {stop_secs}s");
            assert_eq!(rbalances, balances);
        }
    }

    #[test]
    fn checkpoint_rejects_unsupported_sessions_and_bad_snapshots() {
        // Sharded sessions cannot checkpoint.
        let sharded = MarketConfig::new(20, 10).shards(2);
        let session = Session::from_config(&sharded, 3).expect("builds");
        assert!(matches!(
            session.checkpoint(),
            Err(CoreError::Checkpoint(_))
        ));
        // Streaming sessions cannot checkpoint.
        let streaming = MarketConfig::new(20, 40)
            .streaming_market(scrip_streaming::StreamingConfig::market_paced(1.0));
        let session = Session::from_config(&streaming, 3).expect("builds");
        assert!(matches!(
            session.checkpoint(),
            Err(CoreError::Checkpoint(_))
        ));

        // A valid snapshot fails against a different configuration...
        let config = MarketConfig::new(20, 10);
        let mut session = Session::from_config(&config, 3).expect("builds");
        session.run_until(SimTime::from_secs(100));
        let bytes = session.checkpoint().expect("checkpoints");
        let other = MarketConfig::new(21, 10);
        assert!(matches!(
            Session::resume(&other, Vec::new(), &bytes),
            Err(CoreError::Checkpoint(_))
        ));
        // ...a probe-count mismatch...
        assert!(matches!(
            Session::resume(
                &config,
                vec![Box::new(probes::GiniSeriesProbe) as _],
                &bytes
            ),
            Err(CoreError::Checkpoint(_))
        ));
        // ...and corrupt bytes fail closed.
        assert!(Session::resume(&config, Vec::new(), &bytes[..bytes.len() - 3]).is_err());
        let mut garbled = bytes.clone();
        garbled[0] ^= 0xFF;
        assert!(Session::resume(&config, Vec::new(), &garbled).is_err());
        // The pristine snapshot still resumes.
        let resumed = Session::resume(&config, Vec::new(), &bytes).expect("resumes");
        assert_eq!(resumed.now(), SimTime::from_secs(100));
    }

    /// A unique temp path for trace tests; removed by `TracePath::drop`.
    struct TracePath(std::path::PathBuf);

    impl TracePath {
        fn new(name: &str) -> Self {
            TracePath(
                std::env::temp_dir().join(format!("scrip_obs_{}_{name}.trc", std::process::id())),
            )
        }
    }

    impl Drop for TracePath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn record_run(config: &MarketConfig, seed: u64, horizon: SimTime, path: &Path) -> RunRecord {
        let mut session = Session::from_config(config, seed).expect("builds");
        session.record_to(path).expect("starts recording");
        session.run_until(horizon);
        session.finish_trace().expect("recording completes");
        session.finish().0
    }

    #[test]
    fn record_replay_round_trip_is_shard_independent() {
        let config = MarketConfig::new(40, 20)
            .churn(crate::market::ChurnConfig::new(0.4, 300.0, 10).expect("valid"))
            .sample_interval(SimDuration::from_secs(100));
        let horizon = SimTime::from_secs(600);
        let serial = TracePath::new("serial");
        let direct = record_run(&config, 23, horizon, &serial.0);

        // The same scenario recorded sharded produces the identical
        // trace file, byte for byte.
        let sharded_path = TracePath::new("sharded");
        let sharded_record = record_run(&config.clone().shards(2), 23, horizon, &sharded_path.0);
        assert_eq!(sharded_record, direct);
        assert_eq!(
            std::fs::read(&serial.0).expect("serial trace"),
            std::fs::read(&sharded_path.0).expect("sharded trace"),
            "trace bytes differ between serial and sharded recording"
        );

        // The serial trace replays cleanly on both kernels.
        for shards in [1usize, 2, 8] {
            let replay_config = config.clone().shards(shards);
            let mut session = Session::from_config(&replay_config, 23).expect("builds");
            session.replay_from(&serial.0).expect("attaches replay");
            session.run_until(horizon);
            assert!(session.trace_divergence().is_none());
            session.finish_trace().expect("verifies");
            assert_eq!(session.finish().0, direct, "replay at shards={shards}");
        }
    }

    #[test]
    fn replay_pinpoints_a_seeded_divergence() {
        let config = MarketConfig::new(30, 20).sample_interval(SimDuration::from_secs(100));
        let horizon = SimTime::from_secs(400);
        let path = TracePath::new("divergent");
        record_run(&config, 9, horizon, &path.0);

        // Rewrite the recorded seed (header bytes 20..28) so a session
        // seeded differently accepts the trace, then diverges.
        let mut bytes = std::fs::read(&path.0).expect("trace bytes");
        bytes[20..28].copy_from_slice(&11u64.to_le_bytes());
        std::fs::write(&path.0, &bytes).expect("rewrite");

        let mut session = Session::from_config(&config, 11).expect("builds");
        session.replay_from(&path.0).expect("attaches replay");
        session.run_until(horizon);
        let divergence = session
            .trace_divergence()
            .expect("differing seeds must diverge")
            .clone();
        // The run froze at the divergent instant, not the horizon.
        assert!(session.now() <= divergence.time);
        assert!(divergence.time <= horizon);
        let err = session.finish_trace().expect_err("reports divergence");
        assert!(err.to_string().contains("diverged"), "{err}");
    }

    #[test]
    fn replay_resume_verifies_the_tail_of_a_checkpointed_run() {
        let config = MarketConfig::new(40, 20)
            .churn(crate::market::ChurnConfig::new(0.3, 250.0, 8).expect("valid"))
            .sample_interval(SimDuration::from_secs(100));
        let horizon = SimTime::from_secs(800);
        let stop = SimTime::from_secs(300);
        let path = TracePath::new("resume");

        let mut session = Session::from_config(&config, 41).expect("builds");
        session.record_to(&path.0).expect("starts recording");
        session.run_until(stop);
        let checkpoint = session.checkpoint().expect("checkpoints");
        session.run_until(horizon);
        session.finish_trace().expect("recording completes");
        let direct = session.finish().0;

        let mut resumed = Session::resume(&config, Vec::new(), &checkpoint).expect("resumes");
        let reader = TraceReader::from_path(&path.0).expect("opens trace");
        resumed.replay_resume(reader).expect("attaches mid-stream");
        resumed.run_until(horizon);
        assert!(resumed.trace_divergence().is_none());
        resumed.finish_trace().expect("tail verifies");
        assert_eq!(resumed.finish().0, direct);
    }

    #[test]
    fn trace_attachment_is_fail_closed() {
        // Streaming sessions cannot trace.
        let streaming = MarketConfig::new(20, 40)
            .streaming_market(scrip_streaming::StreamingConfig::market_paced(1.0));
        let mut session = Session::from_config(&streaming, 3).expect("builds");
        let path = TracePath::new("reject");
        assert!(matches!(
            session.record_to(&path.0),
            Err(CoreError::Trace(_))
        ));

        // Recording must start before the run does.
        let config = MarketConfig::new(20, 10);
        let mut session = Session::from_config(&config, 3).expect("builds");
        session.run_until(SimTime::from_secs(100));
        assert!(matches!(
            session.record_to(&path.0),
            Err(CoreError::Trace(_))
        ));

        // A recorded trace refuses to verify a different scenario or
        // seed (fail-closed header checks).
        record_run(&config, 3, SimTime::from_secs(200), &path.0);
        let other = MarketConfig::new(21, 10);
        let mut session = Session::from_config(&other, 3).expect("builds");
        assert!(matches!(
            session.replay_from(&path.0),
            Err(CoreError::Trace(_))
        ));
        let mut session = Session::from_config(&config, 4).expect("builds");
        assert!(matches!(
            session.replay_from(&path.0),
            Err(CoreError::Trace(_))
        ));
        // A second tracer cannot stack on the first.
        let mut session = Session::from_config(&config, 3).expect("builds");
        session.replay_from(&path.0).expect("attaches");
        assert!(matches!(
            session.replay_from(&path.0),
            Err(CoreError::Trace(_))
        ));
    }

    #[test]
    fn sample_sink_observes_every_boundary_without_perturbing() {
        let config = MarketConfig::new(30, 20);
        let horizon = SimTime::from_secs(500);
        let baseline = {
            let mut s = Session::from_config(&config, 5).expect("builds");
            s.run_until(horizon);
            s.finish().1.queue().expect("queue").balances_sorted()
        };
        let samples = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let tap = samples.clone();
        let mut s = Session::from_config(&config, 5).expect("builds");
        s.stream_samples_to(Box::new(move |sample: &LiveSample| {
            tap.lock().expect("sink lock").push(sample.clone());
        }));
        s.run_until(horizon);
        assert_eq!(
            s.finish().1.queue().expect("queue").balances_sorted(),
            baseline,
            "a sink observes without influencing the run"
        );
        let samples = samples.lock().expect("sink lock");
        // Regular ticks at 100..=500 (default sample interval 100).
        assert_eq!(samples.len(), 5);
        assert!(samples.windows(2).all(|w| w[0].time < w[1].time));
        let last = samples.last().expect("sampled");
        assert_eq!(last.time, horizon);
        assert!(last.purchases > 0);
        assert!(last.peers > 0);
        assert!(last.events_processed > 0);
        assert!(last.wealth_gini.is_some());
    }

    #[test]
    fn sample_sink_attaches_to_resumed_sessions() {
        let config = MarketConfig::new(30, 20);
        let mut s = Session::from_config(&config, 5).expect("builds");
        s.run_until(SimTime::from_secs(200));
        let ckpt = s.checkpoint().expect("checkpoints");
        s.run_until(SimTime::from_secs(500));
        let baseline = s.finish().1.queue().expect("queue").balances_sorted();

        // record_to is unusable on a resumed session (it already
        // started) — stream_samples_to is not.
        let mut resumed = Session::resume(&config, Vec::new(), &ckpt).expect("resumes");
        let times = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let tap = times.clone();
        resumed.stream_samples_to(Box::new(move |sample: &LiveSample| {
            tap.lock().expect("sink lock").push(sample.time);
        }));
        resumed.run_until(SimTime::from_secs(500));
        assert_eq!(
            resumed.finish().1.queue().expect("queue").balances_sorted(),
            baseline,
            "resume + sink reproduces the uninterrupted run"
        );
        let times = times.lock().expect("sink lock");
        assert_eq!(
            *times,
            vec![
                SimTime::from_secs(300),
                SimTime::from_secs(400),
                SimTime::from_secs(500)
            ],
            "only post-resume boundaries reach the sink"
        );
    }
}

//! The unified observation API: pluggable probes over one `Session`
//! runner that drives *both* market granularities.
//!
//! The paper's evaluation is a family of observations — Gini
//! trajectories, wealth distributions, spending rates, stall rates —
//! over one simulated economy. This module turns "what we measure" into
//! data instead of code:
//!
//! * [`MarketView`] — the read-only facade a probe observes. Both the
//!   queue-level [`CreditMarket`] and the chunk-level
//!   [`StreamingSystem<CreditTradePolicy>`] implement it, so a probe
//!   written once works at either granularity.
//! * [`Probe`] — the observer interface: [`Probe::on_bootstrap`] at the
//!   start of the run, [`Probe::on_settle`] /  [`Probe::on_sample`] at
//!   each sampling boundary, [`Probe::at_horizon`] once at the end.
//! * [`Recorder`] / [`RunRecord`] — the typed-series container probes
//!   write into, keyed by string [`MetricId`]s (well-known ids in
//!   [`ids`]).
//! * [`Session`] — the one entry point that subsumes
//!   [`crate::market::run_market`] and
//!   [`crate::protocol::run_streaming_market`]: build from any
//!   [`MarketConfig`], [`Session::attach`] probes, [`Session::run_until`]
//!   the horizon, [`Session::finish`] into a [`RunRecord`] plus the
//!   finished model.
//!
//! ## Hot-path cost
//!
//! Probe dispatch happens **only at sampling boundaries** (the market's
//! `sample_interval`, plus any extra stop times probes request): the
//! session runs the simulator in uninterrupted spans between stops and
//! never interposes on individual spend/settle events, so the
//! allocation-free spend and chunk-trade hot paths are untouched. With
//! no probes attached the session is a single `run_until` call — zero
//! overhead over the old entry points (measured by the
//! `probe_attached`/`probe_detached` entries of `scrip-sim bench`).
//!
//! ## Example
//!
//! ```
//! use scrip_core::market::MarketConfig;
//! use scrip_core::obs::{probes, Session};
//! use scrip_des::SimTime;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = MarketConfig::new(50, 20);
//! let mut session = Session::from_config(&config, 7)?;
//! session.attach(Box::new(probes::PopulationSeriesProbe::new()));
//! session.attach(Box::new(probes::LorenzProbe::new(20)));
//! session.run_until(SimTime::from_secs(500));
//! let (record, _model) = session.finish();
//! let population = record.series(scrip_core::obs::ids::POPULATION_SERIES);
//! assert_eq!(population.first(), Some(&(0.0, 50.0)));
//! assert_eq!(record.counter(scrip_core::obs::ids::PEER_COUNT), 50);
//! # Ok(())
//! # }
//! ```

use scrip_des::stats::TimeSeries;
use scrip_des::{
    RunStats, Scheduled, Scheduler, ShardedSimulation, SimDuration, SimTime, Simulation,
};
use scrip_streaming::{StreamEvent, StreamingSystem};

use crate::credits::Ledger;
use crate::error::CoreError;
use crate::market::{CreditMarket, FaultStats, MarketConfig, MarketEvent};
use crate::policy::Taxation;
use crate::protocol::{build_streaming_market, CreditTradePolicy};
use crate::sharded::ShardedMarket;
use crate::snapshot;

pub mod probes;

/// Identifies one recorded metric inside a [`RunRecord`]. Plain strings
/// so downstream registries (e.g. the scenario engine's) can mint new
/// metrics without touching this crate.
pub type MetricId = String;

/// Well-known [`MetricId`]s: what the built-in [`probes`] and
/// [`Session::finish`] record.
pub mod ids {
    /// `(t, Gini)` trajectory ([`super::probes::GiniSeriesProbe`]).
    pub const GINI_SERIES: &str = "gini-series";
    /// Final wealth distribution, sorted ascending
    /// ([`super::probes::FinalBalancesProbe`]).
    pub const FINAL_BALANCES: &str = "final-balances";
    /// Per-peer spending rates, sorted ascending
    /// ([`super::probes::SpendingRatesProbe`]).
    pub const SPENDING_RATES: &str = "spending-rates";
    /// Sorted wealth snapshots at requested times
    /// ([`super::probes::SnapshotsProbe`]).
    pub const SNAPSHOTS: &str = "snapshots";
    /// `(t, stall rate)` trajectory; empty for queue-level markets
    /// ([`super::probes::StallSeriesProbe`]).
    pub const STALL_SERIES: &str = "stall-series";
    /// `(t, purchases/sec)` trajectory
    /// ([`super::probes::ThroughputSeriesProbe`]).
    pub const THROUGHPUT_SERIES: &str = "throughput-series";
    /// `(t, live peers)` trajectory
    /// ([`super::probes::PopulationSeriesProbe`]).
    pub const POPULATION_SERIES: &str = "population-series";
    /// Final Lorenz curve `(population share, wealth share)`
    /// ([`super::probes::LorenzProbe`]).
    pub const LORENZ: &str = "lorenz";
    /// Successful purchases (settlements at chunk granularity) —
    /// recorded by [`super::Session::finish`].
    pub const PURCHASES: &str = "purchases";
    /// Purchase attempts refused for lack of credits.
    pub const DENIED: &str = "denied";
    /// Total credits spent by live peers.
    pub const TOTAL_SPENT: &str = "total-spent";
    /// Live peers at the horizon.
    pub const PEER_COUNT: &str = "peer-count";
    /// Gini of the final wealth distribution (absent when the market
    /// has no peers at the horizon).
    pub const WEALTH_GINI: &str = "wealth-gini";
    /// Credits collected by taxation (0 without tax).
    pub const TAX_COLLECTED: &str = "tax-collected";
    /// Credits redistributed by taxation (0 without tax).
    pub const TAX_REDISTRIBUTED: &str = "tax-redistributed";
    /// `(t, cumulative failed delivery attempts)` trajectory
    /// ([`super::probes::FaultSeriesProbe`]); empty with faults off.
    pub const FAULT_SERIES: &str = "fault-series";
    /// `(t, credits withheld in trade escrow)` trajectory
    /// ([`super::probes::FaultSeriesProbe`]); empty with faults off.
    pub const ESCROW_SERIES: &str = "escrow-series";
    /// Trades concluded successfully despite faults.
    pub const FAULT_DELIVERED: &str = "fault-delivered";
    /// Delivery attempts lost in flight.
    pub const FAULT_DROPPED: &str = "fault-dropped";
    /// Delivery attempts where the seller took payment and defected.
    pub const FAULT_DEFECTED: &str = "fault-defected";
    /// Delivery attempts that arrived late (after a delay penalty).
    pub const FAULT_DELAYED: &str = "fault-delayed";
    /// Retries issued after drops/defects.
    pub const FAULT_RETRIES: &str = "fault-retries";
    /// Trades abandoned with the escrow refunded to the buyer.
    pub const FAULT_REFUNDED: &str = "fault-refunded";
    /// Peers removed by injected crashes.
    pub const FAULT_CRASHES: &str = "fault-crashes";
    /// `(attempt, trades concluded at that attempt)` histogram
    /// ([`super::probes::FaultSeriesProbe`]).
    pub const RETRY_DEPTH: &str = "retry-depth";
}

/// One recorded value: every shape the evaluation pipeline aggregates.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// An `(x, y)` series — trajectories and curves.
    Series(Vec<(f64, f64)>),
    /// A sorted integer distribution (e.g. final balances).
    SortedU64(Vec<u64>),
    /// A sorted float distribution (e.g. spending rates).
    SortedF64(Vec<f64>),
    /// Sorted wealth snapshots: `(time secs, sorted balances)`.
    Snapshots(Vec<(u64, Vec<u64>)>),
    /// An event count.
    Counter(u64),
    /// A single number.
    Scalar(f64),
}

/// Everything measured in one finished run: `(MetricId, MetricValue)`
/// entries in recording order. The typed accessors return empty/zero
/// defaults for absent or differently-typed ids, so consumers read the
/// metrics they care about without `match` boilerplate; use
/// [`RunRecord::get`] when absence must be distinguished.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunRecord {
    entries: Vec<(MetricId, MetricValue)>,
}

impl RunRecord {
    /// The raw value recorded under `id`, if any.
    pub fn get(&self, id: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|(name, _)| name == id)
            .map(|(_, v)| v)
    }

    /// All recorded ids, in recording order.
    pub fn ids(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(name, _)| name.as_str())
    }

    /// The `(x, y)` series under `id` (empty if absent or not a series).
    pub fn series(&self, id: &str) -> &[(f64, f64)] {
        match self.get(id) {
            Some(MetricValue::Series(points)) => points,
            _ => &[],
        }
    }

    /// The sorted integer distribution under `id` (empty if absent).
    pub fn sorted_u64(&self, id: &str) -> &[u64] {
        match self.get(id) {
            Some(MetricValue::SortedU64(values)) => values,
            _ => &[],
        }
    }

    /// The sorted float distribution under `id` (empty if absent).
    pub fn sorted_f64(&self, id: &str) -> &[f64] {
        match self.get(id) {
            Some(MetricValue::SortedF64(values)) => values,
            _ => &[],
        }
    }

    /// The snapshots under `id` (empty if absent).
    pub fn snapshots(&self, id: &str) -> &[(u64, Vec<u64>)] {
        match self.get(id) {
            Some(MetricValue::Snapshots(taken)) => taken,
            _ => &[],
        }
    }

    /// The counter under `id` (0 if absent).
    pub fn counter(&self, id: &str) -> u64 {
        match self.get(id) {
            Some(MetricValue::Counter(n)) => *n,
            _ => 0,
        }
    }

    /// The scalar under `id` (NaN if absent — check [`RunRecord::get`]
    /// when absence matters).
    pub fn scalar(&self, id: &str) -> f64 {
        match self.get(id) {
            Some(MetricValue::Scalar(x)) => *x,
            _ => f64::NAN,
        }
    }
}

/// The write side of a [`RunRecord`]: handed to [`Probe::at_horizon`] so
/// every probe deposits its measurements under its own ids.
#[derive(Debug, Default)]
pub struct Recorder {
    record: RunRecord,
}

impl Recorder {
    /// Records `value` under `id`.
    ///
    /// # Panics
    /// Panics on a duplicate id — two probes claiming the same metric is
    /// a wiring bug, not a runtime condition.
    pub fn record(&mut self, id: impl Into<MetricId>, value: MetricValue) {
        let id = id.into();
        assert!(
            self.record.get(&id).is_none(),
            "duplicate metric id {id:?} recorded"
        );
        self.record.entries.push((id, value));
    }

    /// Finalizes into the immutable [`RunRecord`].
    pub fn finish(self) -> RunRecord {
        self.record
    }
}

/// Read-only view of a running market, shared by both granularities:
/// the queue-level [`CreditMarket`] and the chunk-level
/// [`StreamingSystem<CreditTradePolicy>`]. Everything a probe can
/// observe goes through this trait, so probes are written once and run
/// against either simulator.
///
/// The counter accessors are O(1); the distribution accessors assemble
/// owned vectors and are intended for sampling boundaries, not hot
/// paths.
pub trait MarketView {
    /// Number of live peers.
    fn peer_count(&self) -> usize;
    /// Successful purchases so far (settlements at chunk granularity).
    fn purchases(&self) -> u64;
    /// Purchase attempts refused for lack of credits.
    fn denied(&self) -> u64;
    /// Total credits spent by live peers (O(1)).
    fn total_spent(&self) -> u64;
    /// The credit ledger.
    fn ledger(&self) -> &Ledger;
    /// Taxation state, when taxation is enabled.
    fn taxation(&self) -> Option<&Taxation>;
    /// Current balances sorted ascending.
    fn balances_sorted(&self) -> Vec<u64>;
    /// Gini of the current wealth distribution (O(1) via the ledger's
    /// online accumulator).
    ///
    /// # Errors
    /// Returns [`CoreError::Econ`] if the market has no peers.
    fn wealth_gini(&self) -> Result<f64, CoreError>;
    /// Per-peer credit spending rates over `[0, now]`, sorted ascending.
    fn spending_rates_sorted(&self, now: SimTime) -> Vec<f64>;
    /// The internally recorded `(t, Gini)` trajectory.
    fn gini_series(&self) -> &TimeSeries;
    /// The `(t, stall rate)` trajectory — [`None`] for queue-level
    /// markets, which have no playback to stall.
    fn stall_series(&self) -> Option<&TimeSeries>;
    /// Fault-injection counters — [`None`] when the market runs without
    /// a fault plan (the default).
    fn fault_stats(&self) -> Option<&FaultStats> {
        None
    }
    /// Credits currently withheld in trade escrow for in-flight
    /// deliveries (0 without faults).
    fn in_flight_escrow(&self) -> u64 {
        0
    }
}

impl MarketView for CreditMarket {
    fn peer_count(&self) -> usize {
        CreditMarket::peer_count(self)
    }
    fn purchases(&self) -> u64 {
        CreditMarket::purchases(self)
    }
    fn denied(&self) -> u64 {
        CreditMarket::denied(self)
    }
    fn total_spent(&self) -> u64 {
        CreditMarket::total_spent(self)
    }
    fn ledger(&self) -> &Ledger {
        CreditMarket::ledger(self)
    }
    fn taxation(&self) -> Option<&Taxation> {
        CreditMarket::taxation(self)
    }
    fn balances_sorted(&self) -> Vec<u64> {
        CreditMarket::balances_sorted(self)
    }
    fn wealth_gini(&self) -> Result<f64, CoreError> {
        CreditMarket::wealth_gini(self)
    }
    fn spending_rates_sorted(&self, now: SimTime) -> Vec<f64> {
        CreditMarket::spending_rates_sorted(self, now)
    }
    fn gini_series(&self) -> &TimeSeries {
        CreditMarket::gini_series(self)
    }
    fn stall_series(&self) -> Option<&TimeSeries> {
        None
    }
    fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults_enabled()
            .then(|| CreditMarket::fault_stats(self))
    }
    fn in_flight_escrow(&self) -> u64 {
        CreditMarket::in_flight_escrow(self)
    }
}

impl MarketView for StreamingSystem<CreditTradePolicy> {
    fn peer_count(&self) -> usize {
        StreamingSystem::peer_count(self)
    }
    fn purchases(&self) -> u64 {
        self.policy().settlements
    }
    fn denied(&self) -> u64 {
        self.policy().denials
    }
    fn total_spent(&self) -> u64 {
        self.policy().total_spent()
    }
    fn ledger(&self) -> &Ledger {
        self.policy().ledger()
    }
    fn taxation(&self) -> Option<&Taxation> {
        self.policy().taxation()
    }
    fn balances_sorted(&self) -> Vec<u64> {
        self.policy().balances_sorted()
    }
    fn wealth_gini(&self) -> Result<f64, CoreError> {
        self.policy().wealth_gini()
    }
    fn spending_rates_sorted(&self, now: SimTime) -> Vec<f64> {
        self.policy().spending_rates_sorted(now)
    }
    fn gini_series(&self) -> &TimeSeries {
        self.policy().gini_series()
    }
    fn stall_series(&self) -> Option<&TimeSeries> {
        Some(StreamingSystem::stall_series(self))
    }
    fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults_enabled()
            .then(|| StreamingSystem::fault_stats(self))
    }
    // `in_flight_escrow` stays 0: the streaming layer settles on
    // delivery, so no credits sit in trade escrow.
}

/// A pluggable observer over one market run.
///
/// Hooks fire **only at sampling boundaries** (never per simulator
/// event), so attaching probes cannot perturb the spend/trade hot
/// paths; see the [module docs](self) for the cost model. All hooks
/// have empty defaults except [`Probe::at_horizon`], where the probe
/// deposits whatever it measured into the [`Recorder`].
pub trait Probe: Send {
    /// Extra simulated instants (besides the regular sampling grid) at
    /// which this probe needs [`Probe::on_sample`] — e.g. wealth
    /// snapshot times. Queried once at [`Session::attach`].
    fn extra_stops(&self) -> Vec<SimTime> {
        Vec::new()
    }

    /// Called once at the start of the run, after the market has
    /// bootstrapped (time zero events processed).
    fn on_bootstrap(&mut self, view: &dyn MarketView) {
        let _ = view;
    }

    /// Batched settlement notification: how many purchases settled and
    /// how many were denied since the previous sampling boundary.
    /// Delivered immediately before [`Probe::on_sample`] at every stop —
    /// this is how throughput-style probes observe purchase flow without
    /// any per-event dispatch.
    fn on_settle(&mut self, now: SimTime, settled: u64, denied: u64) {
        let _ = (now, settled, denied);
    }

    /// Called at every sampling boundary: the market's
    /// `sample_interval` grid plus any [`Probe::extra_stops`] requested
    /// by an attached probe.
    fn on_sample(&mut self, now: SimTime, view: &dyn MarketView) {
        let _ = (now, view);
    }

    /// Called once when the session finishes: deposit measurements into
    /// the recorder.
    fn at_horizon(&mut self, now: SimTime, view: &dyn MarketView, rec: &mut Recorder);

    /// Serializes the probe's accumulated state for a
    /// [`Session::checkpoint`]. Stateless probes (the default) return an
    /// empty block; stateful probes must override this *and*
    /// [`Probe::restore_state`] so a resumed run reproduces the
    /// uninterrupted one byte for byte.
    fn snapshot_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state captured by [`Probe::snapshot_state`] during
    /// [`Session::resume`]. The default accepts only the empty block a
    /// stateless probe writes — resuming a stateful snapshot into a
    /// probe that cannot read it fails loudly.
    ///
    /// # Errors
    /// Returns [`CoreError::Checkpoint`] when the block cannot be
    /// decoded by this probe.
    fn restore_state(&mut self, state: &[u8]) -> Result<(), CoreError> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(CoreError::Checkpoint(
                "probe has checkpoint state but no restore_state implementation".into(),
            ))
        }
    }
}

/// The simulator behind a session: one of the two market granularities.
enum SessionSim {
    /// The queue-level spend-loop market.
    Queue(Simulation<CreditMarket>),
    /// The queue-level market partitioned over execution shards
    /// (`shards > 1`); output is byte-identical to [`SessionSim::Queue`].
    Sharded(Box<ShardedSimulation<ShardedMarket>>),
    /// The chunk-level streaming market.
    Chunk(Simulation<StreamingSystem<CreditTradePolicy>>),
}

/// The finished model a [`Session`] hands back, for callers that want
/// more than the [`RunRecord`] (e.g. the deprecated `run_market` /
/// `run_streaming_market` wrappers).
pub enum SessionModel {
    /// A finished queue-level market.
    Queue(CreditMarket),
    /// A finished chunk-level streaming market.
    Chunk(StreamingSystem<CreditTradePolicy>),
}

impl SessionModel {
    /// The queue-level market, if that is what ran.
    pub fn queue(self) -> Option<CreditMarket> {
        match self {
            SessionModel::Queue(market) => Some(market),
            SessionModel::Chunk(_) => None,
        }
    }

    /// The chunk-level streaming system, if that is what ran.
    pub fn chunk(self) -> Option<StreamingSystem<CreditTradePolicy>> {
        match self {
            SessionModel::Queue(_) => None,
            SessionModel::Chunk(system) => Some(system),
        }
    }
}

/// One market run under observation: the unified entry point for both
/// granularities. See the [module docs](self) for the full picture and
/// an example.
pub struct Session {
    sim: SessionSim,
    probes: Vec<Box<dyn Probe>>,
    /// The root seed the market was built from — stored so a
    /// [`Session::checkpoint`] can rebuild the same derived RNG streams
    /// on [`Session::resume`].
    seed: u64,
    /// The sampling-grid spacing (the market's effective
    /// `sample_interval`).
    interval: SimDuration,
    /// Next regular sampling boundary.
    next_tick: SimTime,
    /// Pending extra stops from probes, ascending and deduplicated.
    stops: Vec<SimTime>,
    /// Purchase/denial counts at the previous boundary (for
    /// [`Probe::on_settle`] deltas).
    last_purchases: u64,
    last_denied: u64,
    started: bool,
}

impl Session {
    /// Builds a session from any market configuration: a config whose
    /// [`MarketConfig::streaming`] is set runs at chunk granularity
    /// through the protocol stack, one with [`MarketConfig::shards`]
    /// `> 1` runs the queue-level market on the sharded kernel
    /// (byte-identical output, sampling boundaries double as window
    /// barriers), everything else runs the queue-level
    /// spend loop. The simulation is pre-sized
    /// (`queue_capacity_hint`) and its bootstrap event scheduled; call
    /// [`Session::attach`] before [`Session::run_until`].
    ///
    /// # Errors
    /// Returns [`CoreError`] for invalid configurations or topology
    /// failures.
    pub fn from_config(config: &MarketConfig, seed: u64) -> Result<Session, CoreError> {
        let (sim, interval) = if config.streaming.is_some() {
            let system = build_streaming_market(config, seed)?;
            let interval = system
                .config()
                .sample_interval
                .unwrap_or(config.sample_interval);
            let profile = system.queue_profile();
            let mut sim = Simulation::with_profile(system, profile);
            sim.schedule(SimTime::ZERO, StreamEvent::Bootstrap);
            (SessionSim::Chunk(sim), interval)
        } else if config.shards > 1 {
            // Sharded execution: the same market on the windowed
            // kernel, with the sampling grid as the tick-window width
            // so sampling boundaries are shard barriers.
            let market = CreditMarket::build(config.clone(), seed)?;
            let interval = config.sample_interval;
            let profile = market.queue_profile();
            let mut sim = ShardedSimulation::with_profile(
                ShardedMarket::new(market, config.shards),
                interval,
                profile,
            );
            sim.schedule(SimTime::ZERO, MarketEvent::Bootstrap);
            (SessionSim::Sharded(Box::new(sim)), interval)
        } else {
            let market = CreditMarket::build(config.clone(), seed)?;
            let interval = config.sample_interval;
            let profile = market.queue_profile();
            let mut sim = Simulation::with_profile(market, profile);
            sim.schedule(SimTime::ZERO, MarketEvent::Bootstrap);
            (SessionSim::Queue(sim), interval)
        };
        Ok(Session {
            sim,
            probes: Vec::new(),
            seed,
            interval,
            next_tick: SimTime::ZERO + interval,
            stops: Vec::new(),
            last_purchases: 0,
            last_denied: 0,
            started: false,
        })
    }

    /// Attaches a probe. Its [`Probe::extra_stops`] are merged into the
    /// session's stop schedule.
    ///
    /// # Panics
    /// Panics if the session has already started running — probes must
    /// observe the run from the beginning.
    pub fn attach(&mut self, probe: Box<dyn Probe>) {
        assert!(
            !self.started,
            "attach probes before the first run_until call"
        );
        self.stops.extend(probe.extra_stops());
        self.stops.sort_unstable();
        self.stops.dedup();
        self.probes.push(probe);
    }

    /// Number of attached probes.
    pub fn probe_count(&self) -> usize {
        self.probes.len()
    }

    /// The current simulation clock.
    pub fn now(&self) -> SimTime {
        match &self.sim {
            SessionSim::Queue(sim) => sim.now(),
            SessionSim::Sharded(sim) => sim.now(),
            SessionSim::Chunk(sim) => sim.now(),
        }
    }

    /// Kernel counters for the run so far (events processed/pending).
    pub fn stats(&self) -> RunStats {
        match &self.sim {
            SessionSim::Queue(sim) => sim.stats(),
            SessionSim::Sharded(sim) => sim.stats(),
            SessionSim::Chunk(sim) => sim.stats(),
        }
    }

    /// The observable market state, at either granularity.
    pub fn view(&self) -> &dyn MarketView {
        match &self.sim {
            SessionSim::Queue(sim) => sim.model(),
            SessionSim::Sharded(sim) => sim.model().market(),
            SessionSim::Chunk(sim) => sim.model(),
        }
    }

    fn sim_run_until(&mut self, t: SimTime) {
        match &mut self.sim {
            SessionSim::Queue(sim) => {
                sim.run_until(t);
            }
            SessionSim::Sharded(sim) => {
                sim.run_until(t);
            }
            SessionSim::Chunk(sim) => {
                sim.run_until(t);
            }
        }
    }

    /// Delivers `on_settle` + `on_sample` to every probe at boundary
    /// `now`.
    fn dispatch_sample(&mut self, now: SimTime) {
        let view: &dyn MarketView = match &self.sim {
            SessionSim::Queue(sim) => sim.model(),
            SessionSim::Sharded(sim) => sim.model().market(),
            SessionSim::Chunk(sim) => sim.model(),
        };
        let purchases = view.purchases();
        let denied = view.denied();
        let settled_delta = purchases - self.last_purchases;
        let denied_delta = denied - self.last_denied;
        self.last_purchases = purchases;
        self.last_denied = denied;
        for probe in &mut self.probes {
            probe.on_settle(now, settled_delta, denied_delta);
            probe.on_sample(now, view);
        }
    }

    /// Processes the time-zero events (bootstrap) and delivers
    /// [`Probe::on_bootstrap`], exactly once.
    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        self.sim_run_until(SimTime::ZERO);
        let view: &dyn MarketView = match &self.sim {
            SessionSim::Queue(sim) => sim.model(),
            SessionSim::Sharded(sim) => sim.model().market(),
            SessionSim::Chunk(sim) => sim.model(),
        };
        self.last_purchases = view.purchases();
        self.last_denied = view.denied();
        for probe in &mut self.probes {
            probe.on_bootstrap(view);
        }
        // Extra stops at time zero (e.g. a snapshot at t = 0) fire right
        // after bootstrap.
        while self.stops.first() == Some(&SimTime::ZERO) {
            self.stops.remove(0);
            self.dispatch_sample(SimTime::ZERO);
        }
    }

    /// Advances the simulation to `horizon` (inclusive), stopping at
    /// every sampling boundary in between to dispatch probe hooks. With
    /// no probes attached this is a single uninterrupted `run_until` —
    /// zero overhead over driving the simulator directly. May be called
    /// repeatedly with increasing horizons.
    pub fn run_until(&mut self, horizon: SimTime) {
        if self.probes.is_empty() {
            self.started = true;
            self.sim_run_until(horizon);
            return;
        }
        self.ensure_started();
        while self.now() < horizon {
            let mut stop = horizon;
            if self.next_tick <= stop {
                stop = self.next_tick;
            }
            if let Some(&extra) = self.stops.first() {
                if extra > self.now() && extra <= stop {
                    stop = extra;
                }
            }
            self.sim_run_until(stop);
            let is_tick = stop == self.next_tick;
            let is_extra = self.stops.first() == Some(&stop);
            if is_tick || is_extra {
                if is_tick {
                    self.next_tick += self.interval;
                }
                if is_extra {
                    self.stops.remove(0);
                }
                self.dispatch_sample(stop);
            }
        }
    }

    /// Serializes the complete session state — RNG streams, market
    /// (graph, arena, ledger, escrow, pricing, fault plan), every
    /// pending event with its `(time, seq)` identity, the sampling
    /// schedule, and each probe's accumulated state — into one binary
    /// snapshot. Resuming it with [`Session::resume`] and running to the
    /// horizon produces output byte-identical to never having stopped.
    ///
    /// Checkpoint at a quiescent instant: after a [`Session::run_until`]
    /// call, so no event at or before the clock is still pending.
    ///
    /// # Errors
    /// Returns [`CoreError::Checkpoint`] for sharded (`shards > 1`) and
    /// chunk-level (streaming) sessions, which do not support
    /// checkpointing yet.
    pub fn checkpoint(&self) -> Result<Vec<u8>, CoreError> {
        let sim = match &self.sim {
            SessionSim::Queue(sim) => sim,
            SessionSim::Sharded(_) => {
                return Err(CoreError::Checkpoint(
                    "sharded sessions (shards > 1) cannot checkpoint; run with shards = 1".into(),
                ));
            }
            SessionSim::Chunk(_) => {
                return Err(CoreError::Checkpoint(
                    "chunk-level (streaming) sessions cannot checkpoint".into(),
                ));
            }
        };
        let market = sim.model();
        let mut w = snapshot::Writer::with_header();
        let config_repr = format!("{:?}", market.config());
        w.put_u64(snapshot::fingerprint(config_repr.as_bytes()));
        w.put_u64(self.seed);
        w.put_u64(sim.now().as_micros());
        w.put_u64(sim.stats().events_processed);
        let pending = sim.scheduler().snapshot_events();
        w.put_u64(pending.len() as u64);
        for scheduled in &pending {
            w.put_u64(scheduled.time.as_micros());
            w.put_u64(scheduled.seq);
            scheduled.event.encode(&mut w);
        }
        market.write_state(&mut w);
        w.put_u64(self.interval.as_micros());
        w.put_u64(self.next_tick.as_micros());
        w.put_u64(self.stops.len() as u64);
        for stop in &self.stops {
            w.put_u64(stop.as_micros());
        }
        w.put_u64(self.last_purchases);
        w.put_u64(self.last_denied);
        w.put_bool(self.started);
        w.put_u64(self.probes.len() as u64);
        for probe in &self.probes {
            w.put_bytes(&probe.snapshot_state());
        }
        Ok(w.into_bytes())
    }

    /// Rebuilds a session from a [`Session::checkpoint`] snapshot.
    ///
    /// `config` must be the configuration the checkpointed session was
    /// built from (checked against a fingerprint in the snapshot), and
    /// `probes` must be the same probes in the same order — their
    /// accumulated state is restored from the snapshot, so pass freshly
    /// constructed instances. Running the resumed session to the horizon
    /// and finishing it reproduces the uninterrupted run byte for byte.
    ///
    /// # Errors
    /// Returns [`CoreError::Checkpoint`] for corrupt or truncated
    /// snapshots, a configuration or probe-count mismatch, or a snapshot
    /// written by an incompatible format version.
    pub fn resume(
        config: &MarketConfig,
        mut probes: Vec<Box<dyn Probe>>,
        bytes: &[u8],
    ) -> Result<Session, CoreError> {
        let mut r = snapshot::Reader::with_header(bytes)?;
        let stored_fingerprint = r.take_u64()?;
        let config_repr = format!("{config:?}");
        if stored_fingerprint != snapshot::fingerprint(config_repr.as_bytes()) {
            return Err(CoreError::Checkpoint(
                "configuration mismatch: snapshot was taken under a different scenario".into(),
            ));
        }
        let seed = r.take_u64()?;
        let clock = SimTime::from_micros(r.take_u64()?);
        let events_processed = r.take_u64()?;
        let pending_len = r.take_u64()?;
        let mut pending = Vec::with_capacity(pending_len as usize);
        for _ in 0..pending_len {
            let time = SimTime::from_micros(r.take_u64()?);
            let seq = r.take_u64()?;
            let event = MarketEvent::decode(&mut r)?;
            pending.push(Scheduled { time, seq, event });
        }
        let mut market = CreditMarket::build(config.clone(), seed)?;
        market.read_state(&mut r)?;
        let interval = SimDuration::from_micros(r.take_u64()?);
        let next_tick = SimTime::from_micros(r.take_u64()?);
        let stops_len = r.take_u64()?;
        let mut stops = Vec::with_capacity(stops_len as usize);
        for _ in 0..stops_len {
            stops.push(SimTime::from_micros(r.take_u64()?));
        }
        let last_purchases = r.take_u64()?;
        let last_denied = r.take_u64()?;
        let started = r.take_bool()?;
        let probe_count = r.take_u64()?;
        if probe_count != probes.len() as u64 {
            return Err(CoreError::Checkpoint(format!(
                "snapshot has {probe_count} probes, resume was given {}",
                probes.len()
            )));
        }
        for probe in &mut probes {
            let state = r.take_bytes()?;
            probe.restore_state(state)?;
        }
        r.finish()?;
        // A plain heap backend: restored runs pop the identical
        // `(time, seq)` sequence on either backend (a pinned invariant),
        // and the heap needs no cursor advance from time zero.
        let mut scheduler = Scheduler::with_capacity(pending.len() + market.queue_capacity_hint());
        scheduler.restore_clock(clock);
        for scheduled in pending {
            scheduler.enqueue_scheduled(scheduled);
        }
        let sim = Simulation::from_parts(market, scheduler, events_processed);
        Ok(Session {
            sim: SessionSim::Queue(sim),
            probes,
            seed,
            interval,
            next_tick,
            stops,
            last_purchases,
            last_denied,
            started,
        })
    }

    /// Finishes the run: every probe's [`Probe::at_horizon`] deposits
    /// into the record, the session adds the core counters
    /// ([`ids::PURCHASES`], [`ids::DENIED`], [`ids::TOTAL_SPENT`],
    /// [`ids::PEER_COUNT`], [`ids::WEALTH_GINI`] — absent when no peers
    /// remain — [`ids::TAX_COLLECTED`], [`ids::TAX_REDISTRIBUTED`]), and
    /// the finished model is handed back alongside.
    pub fn finish(mut self) -> (RunRecord, SessionModel) {
        let now = self.now();
        let mut recorder = Recorder::default();
        {
            let view: &dyn MarketView = match &self.sim {
                SessionSim::Queue(sim) => sim.model(),
                SessionSim::Sharded(sim) => sim.model().market(),
                SessionSim::Chunk(sim) => sim.model(),
            };
            recorder.record(ids::PURCHASES, MetricValue::Counter(view.purchases()));
            recorder.record(ids::DENIED, MetricValue::Counter(view.denied()));
            recorder.record(ids::TOTAL_SPENT, MetricValue::Counter(view.total_spent()));
            recorder.record(
                ids::PEER_COUNT,
                MetricValue::Counter(view.peer_count() as u64),
            );
            if let Ok(gini) = view.wealth_gini() {
                recorder.record(ids::WEALTH_GINI, MetricValue::Scalar(gini));
            }
            let (collected, redistributed) = view
                .taxation()
                .map_or((0, 0), |t| (t.collected, t.redistributed));
            recorder.record(ids::TAX_COLLECTED, MetricValue::Counter(collected));
            recorder.record(ids::TAX_REDISTRIBUTED, MetricValue::Counter(redistributed));
            for probe in &mut self.probes {
                probe.at_horizon(now, view, &mut recorder);
            }
        }
        let model = match self.sim {
            SessionSim::Queue(sim) => SessionModel::Queue(sim.into_model()),
            SessionSim::Sharded(sim) => SessionModel::Queue(sim.into_model().into_market()),
            SessionSim::Chunk(sim) => SessionModel::Chunk(sim.into_model()),
        };
        (recorder.finish(), model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::run_market;
    use scrip_streaming::StreamingConfig;

    /// A probe exercising every hook: counts dispatches and checks the
    /// view is usable from each.
    struct CountingProbe {
        bootstraps: u32,
        samples: Vec<SimTime>,
        settled_total: u64,
        denied_total: u64,
    }

    impl CountingProbe {
        fn new() -> Self {
            CountingProbe {
                bootstraps: 0,
                samples: Vec::new(),
                settled_total: 0,
                denied_total: 0,
            }
        }
    }

    impl Probe for CountingProbe {
        fn extra_stops(&self) -> Vec<SimTime> {
            vec![SimTime::from_secs(42)]
        }
        fn on_bootstrap(&mut self, view: &dyn MarketView) {
            self.bootstraps += 1;
            assert!(view.peer_count() > 0);
        }
        fn on_settle(&mut self, _now: SimTime, settled: u64, denied: u64) {
            self.settled_total += settled;
            self.denied_total += denied;
        }
        fn on_sample(&mut self, now: SimTime, view: &dyn MarketView) {
            assert!(view.ledger().conserved());
            self.samples.push(now);
        }
        fn at_horizon(&mut self, now: SimTime, view: &dyn MarketView, rec: &mut Recorder) {
            assert_eq!(now, *self.samples.last().expect("sampled"));
            rec.record("bootstraps", MetricValue::Counter(self.bootstraps.into()));
            rec.record("settled", MetricValue::Counter(self.settled_total));
            rec.record(
                "sample-count",
                MetricValue::Counter(self.samples.len() as u64),
            );
            let _ = view;
        }
    }

    #[test]
    fn session_dispatches_hooks_at_boundaries_only() {
        let config = MarketConfig::new(30, 20);
        let mut session = Session::from_config(&config, 5).expect("builds");
        session.attach(Box::new(CountingProbe::new()));
        session.run_until(SimTime::from_secs(500));
        let (record, model) = session.finish();
        assert_eq!(record.counter("bootstraps"), 1);
        // 5 regular ticks (100..=500) + the extra stop at 42.
        assert_eq!(record.counter("sample-count"), 6);
        // The settle deltas sum to the final purchase counter.
        assert_eq!(record.counter("settled"), record.counter(ids::PURCHASES));
        assert!(record.counter(ids::PURCHASES) > 0);
        assert!(model.queue().is_some());
    }

    #[test]
    fn session_reproduces_run_market_exactly() {
        let config = MarketConfig::new(40, 20);
        let horizon = SimTime::from_secs(1_000);
        let direct = run_market(config.clone(), 9, horizon).expect("runs");

        // Detached session.
        let mut session = Session::from_config(&config, 9).expect("builds");
        session.run_until(horizon);
        let (record, model) = session.finish();
        let market = model.queue().expect("queue config");
        assert_eq!(market.balances_sorted(), direct.balances_sorted());
        assert_eq!(record.counter(ids::PURCHASES), direct.purchases());

        // Attached session: probes observe, results stay bit-identical.
        let mut observed = Session::from_config(&config, 9).expect("builds");
        observed.attach(Box::new(CountingProbe::new()));
        observed.run_until(horizon);
        let (orec, omodel) = observed.finish();
        let omarket = omodel.queue().expect("queue config");
        assert_eq!(omarket.balances_sorted(), direct.balances_sorted());
        assert_eq!(omarket.gini_series(), direct.gini_series());
        assert_eq!(orec.counter(ids::PURCHASES), direct.purchases());
    }

    #[test]
    fn sharded_sessions_reproduce_serial_sessions_exactly() {
        let config = MarketConfig::new(40, 20);
        let horizon = SimTime::from_secs(1_000);
        let direct = run_market(config.clone(), 9, horizon).expect("runs");
        for shards in [2, 4] {
            let sharded_config = config.clone().shards(shards);
            // Probe-less session.
            let mut session = Session::from_config(&sharded_config, 9).expect("builds");
            session.run_until(horizon);
            let (record, model) = session.finish();
            let market = model.queue().expect("sharded configs yield queue models");
            assert_eq!(market.balances_sorted(), direct.balances_sorted());
            assert_eq!(market.gini_series(), direct.gini_series());
            assert_eq!(record.counter(ids::PURCHASES), direct.purchases());
            // Probes attached: boundaries are window barriers; results
            // stay bit-identical.
            let mut observed = Session::from_config(&sharded_config, 9).expect("builds");
            observed.attach(Box::new(CountingProbe::new()));
            observed.run_until(horizon);
            let (orec, omodel) = observed.finish();
            let omarket = omodel.queue().expect("queue model");
            assert_eq!(omarket.balances_sorted(), direct.balances_sorted());
            assert_eq!(orec.counter("sample-count"), 11); // 10 ticks + stop at 42
        }
    }

    #[test]
    fn session_runs_chunk_level_configs() {
        let config = MarketConfig::new(30, 40)
            .streaming_market(StreamingConfig::market_paced(1.0))
            .sample_interval(SimDuration::from_secs(25));
        let mut session = Session::from_config(&config, 21).expect("builds");
        session.attach(Box::new(CountingProbe::new()));
        session.run_until(SimTime::from_secs(150));
        let (record, model) = session.finish();
        let system = model.chunk().expect("chunk config");
        assert!(record.counter(ids::PURCHASES) > 100, "settlements recorded");
        assert_eq!(
            record.counter(ids::PURCHASES),
            system.policy().settlements,
            "view and model agree"
        );
        assert!(system.stall_series().len() >= 6);
        // 150 / 25 = 6 regular ticks + extra stop at 42.
        assert_eq!(record.counter("sample-count"), 7);
    }

    #[test]
    fn finish_skips_wealth_gini_for_empty_markets() {
        // A market whose every peer departs before the horizon.
        use crate::market::{ChurnConfig, TopologyKind};
        let config = MarketConfig::new(4, 5)
            .topology(TopologyKind::Complete)
            .churn(ChurnConfig::new(1e-9, 0.5, 1).expect("valid"))
            .sample_interval(SimDuration::from_secs(10));
        let mut session = Session::from_config(&config, 3).expect("builds");
        session.run_until(SimTime::from_secs(5_000));
        let (record, _) = session.finish();
        if record.counter(ids::PEER_COUNT) == 0 {
            assert!(record.get(ids::WEALTH_GINI).is_none());
        }
    }

    #[test]
    fn record_accessors_default_on_absence_and_type_mismatch() {
        let mut rec = Recorder::default();
        rec.record("a-series", MetricValue::Series(vec![(1.0, 2.0)]));
        rec.record("a-count", MetricValue::Counter(7));
        let record = rec.finish();
        assert_eq!(record.series("a-series"), &[(1.0, 2.0)]);
        assert_eq!(record.counter("a-count"), 7);
        assert!(record.series("missing").is_empty());
        assert!(record.series("a-count").is_empty(), "type mismatch");
        assert_eq!(record.counter("a-series"), 0, "type mismatch");
        assert!(record.scalar("missing").is_nan());
        assert_eq!(record.ids().collect::<Vec<_>>(), ["a-series", "a-count"]);
    }

    #[test]
    #[should_panic(expected = "duplicate metric id")]
    fn duplicate_metric_ids_panic() {
        let mut rec = Recorder::default();
        rec.record("x", MetricValue::Counter(1));
        rec.record("x", MetricValue::Counter(2));
    }

    #[test]
    #[should_panic(expected = "attach probes before")]
    fn attach_after_start_panics() {
        let config = MarketConfig::new(10, 5);
        let mut session = Session::from_config(&config, 1).expect("builds");
        session.run_until(SimTime::from_secs(10));
        session.attach(Box::new(CountingProbe::new()));
    }

    /// The standard probe set for checkpoint tests — every stateful
    /// built-in probe, so resume must reproduce all their state.
    fn checkpoint_probes() -> Vec<Box<dyn Probe>> {
        vec![
            Box::new(probes::GiniSeriesProbe),
            Box::new(probes::SnapshotsProbe::new(vec![150, 700])),
            Box::new(probes::ThroughputSeriesProbe::new()),
            Box::new(probes::PopulationSeriesProbe::new()),
            Box::new(probes::FaultSeriesProbe::new()),
        ]
    }

    fn straight_run(config: &MarketConfig, seed: u64, horizon: SimTime) -> (RunRecord, Vec<u64>) {
        let mut session = Session::from_config(config, seed).expect("builds");
        for probe in checkpoint_probes() {
            session.attach(probe);
        }
        session.run_until(horizon);
        let (record, model) = session.finish();
        let market = model.queue().expect("queue config");
        (record, market.balances_sorted())
    }

    fn resumed_run(
        config: &MarketConfig,
        seed: u64,
        stop: SimTime,
        horizon: SimTime,
    ) -> (RunRecord, Vec<u64>) {
        let mut session = Session::from_config(config, seed).expect("builds");
        for probe in checkpoint_probes() {
            session.attach(probe);
        }
        session.run_until(stop);
        let bytes = session.checkpoint().expect("checkpoints");
        drop(session);
        let mut resumed = Session::resume(config, checkpoint_probes(), &bytes).expect("resumes");
        // A checkpoint of the freshly resumed session reproduces the
        // original snapshot bit for bit.
        assert_eq!(resumed.checkpoint().expect("re-checkpoints"), bytes);
        resumed.run_until(horizon);
        let (record, model) = resumed.finish();
        let market = model.queue().expect("queue config");
        (record, market.balances_sorted())
    }

    #[test]
    fn resume_is_byte_identical_to_uninterrupted_run() {
        let config = MarketConfig::new(40, 20)
            .churn(crate::market::ChurnConfig::new(0.4, 300.0, 10).expect("valid"))
            .sample_interval(SimDuration::from_secs(100));
        let horizon = SimTime::from_secs(1_000);
        let (direct, balances) = straight_run(&config, 23, horizon);
        for stop_secs in [100, 450, 1_000] {
            let (resumed, rbalances) =
                resumed_run(&config, 23, SimTime::from_secs(stop_secs), horizon);
            assert_eq!(resumed, direct, "diverged after resume at {stop_secs}s");
            assert_eq!(rbalances, balances);
        }
    }

    #[test]
    fn resume_is_byte_identical_under_an_active_fault_plan() {
        let spec = scrip_des::FaultSpec {
            drop_rate: 0.10,
            defect_rate: 0.05,
            delay_rate: 0.05,
            crash_fraction: 0.10,
            onset: SimTime::from_secs(50),
            ..scrip_des::FaultSpec::default()
        };
        let config = MarketConfig::new(50, 30)
            .topology(crate::market::TopologyKind::Complete)
            .faults(spec)
            .sample_interval(SimDuration::from_secs(100));
        let horizon = SimTime::from_secs(1_000);
        let (direct, balances) = straight_run(&config, 77, horizon);
        assert!(
            direct.counter(ids::FAULT_DROPPED) > 0,
            "fault plan was active"
        );
        for stop_secs in [60, 500] {
            let (resumed, rbalances) =
                resumed_run(&config, 77, SimTime::from_secs(stop_secs), horizon);
            assert_eq!(resumed, direct, "diverged after resume at {stop_secs}s");
            assert_eq!(rbalances, balances);
        }
    }

    #[test]
    fn checkpoint_rejects_unsupported_sessions_and_bad_snapshots() {
        // Sharded sessions cannot checkpoint.
        let sharded = MarketConfig::new(20, 10).shards(2);
        let session = Session::from_config(&sharded, 3).expect("builds");
        assert!(matches!(
            session.checkpoint(),
            Err(CoreError::Checkpoint(_))
        ));
        // Streaming sessions cannot checkpoint.
        let streaming = MarketConfig::new(20, 40)
            .streaming_market(scrip_streaming::StreamingConfig::market_paced(1.0));
        let session = Session::from_config(&streaming, 3).expect("builds");
        assert!(matches!(
            session.checkpoint(),
            Err(CoreError::Checkpoint(_))
        ));

        // A valid snapshot fails against a different configuration...
        let config = MarketConfig::new(20, 10);
        let mut session = Session::from_config(&config, 3).expect("builds");
        session.run_until(SimTime::from_secs(100));
        let bytes = session.checkpoint().expect("checkpoints");
        let other = MarketConfig::new(21, 10);
        assert!(matches!(
            Session::resume(&other, Vec::new(), &bytes),
            Err(CoreError::Checkpoint(_))
        ));
        // ...a probe-count mismatch...
        assert!(matches!(
            Session::resume(
                &config,
                vec![Box::new(probes::GiniSeriesProbe) as _],
                &bytes
            ),
            Err(CoreError::Checkpoint(_))
        ));
        // ...and corrupt bytes fail closed.
        assert!(Session::resume(&config, Vec::new(), &bytes[..bytes.len() - 3]).is_err());
        let mut garbled = bytes.clone();
        garbled[0] ^= 0xFF;
        assert!(Session::resume(&config, Vec::new(), &garbled).is_err());
        // The pristine snapshot still resumes.
        let resumed = Session::resume(&config, Vec::new(), &bytes).expect("resumes");
        assert_eq!(resumed.now(), SimTime::from_secs(100));
    }
}

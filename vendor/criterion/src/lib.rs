//! Minimal offline drop-in for the subset of the `criterion` 0.5 API
//! used by the `scrip-bench` benches.
//!
//! The build environment has no network access to crates.io, so this
//! vendored stub provides the types the benches compile against:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! It is a smoke harness, not a statistics engine: each registered
//! routine is executed for a handful of timed iterations and a single
//! `name ... median-ish time` line is printed. That keeps
//! `cargo bench` (and `cargo test`, which builds and may run
//! `harness = false` bench targets) fast while still exercising every
//! bench body end to end.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An identity function that hides its argument from the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A compound id: `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times a single benchmark routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iters: u64, mut f: F) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX)
    } else {
        Duration::ZERO
    };
    println!(
        "bench: {label:<50} {per_iter:>12.2?}/iter ({} iters)",
        b.iters
    );
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // One iteration keeps `cargo test` runs of harness=false bench
        // targets cheap; raise CRITERION_STUB_ITERS for steadier timings.
        let iters = std::env::var("CRITERION_STUB_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        Criterion { iters }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.iters, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            iters: self.iters,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.iters, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.iters, |b| {
            f(b, input)
        });
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u32;
        Criterion::default().bench_function("counts", |b| b.iter(|| calls += 1));
        assert!(calls >= 1);
    }

    #[test]
    fn group_runs_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &x| b.iter(|| seen = x));
        group.finish();
        assert_eq!(seen, 3);
    }

    #[test]
    fn ids_format_as_expected() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("N5").to_string(), "N5");
    }
}

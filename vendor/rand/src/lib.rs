//! Minimal offline drop-in for the subset of the `rand` 0.8 API used by
//! the `scrip` workspace.
//!
//! The build environment has no network access to crates.io, so this
//! vendored stub provides source-compatible implementations of the
//! handful of items the workspace imports: the [`RngCore`] /
//! [`SeedableRng`] / [`Rng`] traits, [`Error`], and
//! [`rngs::SmallRng`] (xoshiro256++, the same family the real
//! `SmallRng` uses on 64-bit targets).
//!
//! Statistical quality matters here — the workspace's property tests
//! check empirical means of sampled distributions — so the generator
//! and the uniform-range sampling are implemented properly (53-bit
//! floats, unbiased integer ranges) rather than as toys.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type reported by fallible RNG operations ([`RngCore::try_fill_bytes`]).
///
/// The stub generators are infallible, so this is never constructed by
/// this crate; it exists so signatures match `rand` 0.8.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw integer output and byte fill.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    /// Fallible variant of [`fill_bytes`](Self::fill_bytes).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed material (a byte array in all implementations here).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed by expanding it with
    /// SplitMix64 (matching `rand` 0.8 semantics closely enough for
    /// reproducibility *within* this workspace).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        let mut chunks = bytes.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&sm.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = sm.next().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types sampleable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[0, span)` without modulo bias.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Largest multiple of span representable: values >= limit are rejected.
    let limit = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < limit {
            return v % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start + uniform_u64_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// A Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable PRNG: xoshiro256++ (the same family the
    /// real `SmallRng` uses on 64-bit targets). Not cryptographically
    /// secure — simulation use only.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// The full 256-bit generator state, for checkpointing. Feeding
        /// the array back through [`SmallRng::from_state`] reproduces
        /// the exact output stream from this point on.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`SmallRng::state`]. An all-zero state (a xoshiro fixed
        /// point, never produced by a live generator) is nudged to the
        /// same constants as [`SeedableRng::from_seed`].
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return SmallRng::from_seed([0; 32]);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E3779B97F4A7C15,
                    0x6A09E667F3BCC909,
                    0xBB67AE8584CAA73B,
                    0x3C6EF372FE94F82B,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval_with_plausible_mean() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_is_unbiased_enough() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.gen_range(0..7usize)] += 1;
        }
        for &c in &counts {
            let p = c as f64 / n as f64;
            assert!((p - 1.0 / 7.0).abs() < 0.01, "bucket p {p}");
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1_000 {
            match rng.gen_range(0..=3u8) {
                0 => lo = true,
                3 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn state_round_trips() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..17 {
            rng.next_u64();
        }
        let mut resumed = SmallRng::from_state(rng.state());
        for _ in 0..64 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
        // The zero state is nudged exactly like the zero seed.
        let mut a = SmallRng::from_state([0; 4]);
        let mut b = SmallRng::from_seed([0; 32]);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(rng.try_fill_bytes(&mut buf).is_ok());
    }
}

//! Minimal offline drop-in for the subset of the `proptest` 1.x API used
//! by the `scrip` workspace property-test suites.
//!
//! The build environment has no network access to crates.io, so this
//! vendored stub reimplements what the five `tests/proptests.rs` suites
//! actually use: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and boolean strategies, tuple composition,
//! `prop::collection::vec`, the [`proptest!`] macro (with optional
//! `#![proptest_config(..)]`), and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports its seed and message and
//!   panics; re-running is deterministic for a fixed `PROPTEST_CASES` /
//!   `PROPTEST_SEED` environment.
//! - Cases are generated from a fixed default seed so CI is
//!   deterministic; set `PROPTEST_SEED` to explore other streams.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::Range;

/// The RNG handed to strategies while generating a case.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    fn seed_from_u64(seed: u64) -> Self {
        TestRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform `u64` over the whole domain.
    pub fn raw_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn index_in(&mut self, lo: usize, hi: usize) -> usize {
        self.inner.gen_range(lo..hi)
    }
}

/// A generator of test-case values.
///
/// Unlike real proptest there is no value tree / shrinking; a strategy
/// is just a seeded sampler.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn new_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.new_value(rng)).new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (rng.raw_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Yields `true` or `false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.raw_u64() & 1 == 1
        }
    }
}

/// Mirrors the `proptest::prop` namespace (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{SizeRange, Strategy, TestRng};

        /// A strategy for `Vec`s whose length is drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors of values from `element`, with a length
        /// drawn uniformly from `size` (a `usize` or `Range<usize>`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.pick(rng);
                (0..len).map(|_| self.element.new_value(rng)).collect()
            }
        }
    }
}

/// Vector-length specification: a fixed `usize` or a `Range<usize>`.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo + 1 >= self.hi {
            self.lo
        } else {
            rng.index_in(self.lo, self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Test-runner configuration and execution.
pub mod test_runner {
    use super::{Strategy, TestRng};

    /// How a single generated case ended.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the message explains what.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case does not count.
        Reject,
    }

    impl TestCaseError {
        /// An assertion failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// An input rejection (from `prop_assume!`).
        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }

    /// Runner configuration. Only `cases` is implemented.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    const DEFAULT_SEED: u64 = 0x0005_c41b_0000_0001;

    /// Runs `f` against `config.cases` generated cases. Panics (with the
    /// case seed, for reproduction) on the first failing case.
    pub fn run<S: Strategy>(
        config: &ProptestConfig,
        name: &str,
        strategy: &S,
        f: impl Fn(S::Value) -> Result<(), TestCaseError>,
    ) {
        let seed0 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let max_rejects = config.cases.saturating_mul(20).max(1_000);
        let mut stream = 0u64;
        while passed < config.cases {
            let case_seed = seed0
                .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .rotate_left(17);
            stream += 1;
            let mut rng = TestRng::seed_from_u64(case_seed);
            let value = strategy.new_value(&mut rng);
            match f(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest `{name}`: too many prop_assume! rejections \
                             ({rejected} rejects for {passed} passes)"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest `{name}` failed at case {passed} \
                         (seed {case_seed:#x}): {msg}"
                    );
                }
            }
        }
    }
}

/// Everything the test suites import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assume, proptest, Just, Strategy};
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `fn name(arg in strategy, ..)
/// { body }` items (doc comments and `#[test]` attributes included).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run(
                &config,
                stringify!($name),
                &( $($strat,)+ ),
                |( $($arg,)+ )| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
    )*};
}

/// Asserts inside a proptest body; failure fails the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Rejects the current case (it is regenerated, not failed) when the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u64..10, 2..8)) {
            prop_assert!(v.len() >= 2 && v.len() < 8);
            for x in v {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn map_and_flat_map_compose(v in (1usize..5).prop_flat_map(|n| {
            prop::collection::vec(0.0f64..1.0, n * 2).prop_map(move |w| (n, w))
        })) {
            let (n, w) = v;
            prop_assert_eq!(w.len(), n * 2);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..10) {
            prop_assume!(a % 2 == 0);
            prop_assert!(a % 2 == 0);
        }
    }

    #[test]
    fn bool_any_produces_both() {
        let mut rng = crate::TestRng::seed_from_u64(7);
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[usize::from(crate::bool::ANY.new_value(&mut rng))] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
